package td

import (
	"reflect"
	"testing"

	"repro/internal/cq"
	"repro/internal/queries"
)

// fig3Query is the CQ of the paper's Fig. 3 (Example 3.1).
func fig3Query() *cq.Query {
	return cq.New(
		cq.NewAtom("R", "x1", "x2"),
		cq.NewAtom("R", "x2", "x3"),
		cq.NewAtom("R", "x3", "x4"),
		cq.NewAtom("R", "x2", "x4"),
		cq.NewAtom("R", "x3", "x5"),
		cq.NewAtom("R", "x4", "x6"),
	)
}

// fig3TD is the ordered TD on the right of Fig. 3.
func fig3TD() *TD {
	return MustNew(
		[][]int{{0, 1}, {1, 2, 3}, {2, 4}, {3, 5}},
		[]int{-1, 0, 1, 1},
	)
}

func TestFig3TDValid(t *testing.T) {
	if err := fig3TD().Validate(fig3Query()); err != nil {
		t.Fatalf("paper's example TD rejected: %v", err)
	}
}

func TestPreorderAndAdhesions(t *testing.T) {
	tree := fig3TD()
	if got := tree.Preorder(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Preorder = %v", got)
	}
	if got := tree.Adhesion(1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Adhesion(1) = %v, want [1] (x2)", got)
	}
	if got := tree.Adhesion(2); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Adhesion(2) = %v, want [2] (x3)", got)
	}
	if got := tree.Adhesion(tree.Root); got != nil {
		t.Fatalf("root adhesion = %v", got)
	}
	if got := tree.MaxAdhesion(); got != 1 {
		t.Fatalf("MaxAdhesion = %d", got)
	}
	if got := tree.Depth(); got != 2 {
		t.Fatalf("Depth = %d", got)
	}
	if got := tree.Width(); got != 2 {
		t.Fatalf("Width = %d", got)
	}
}

func TestOwnersAndCompatibleOrder(t *testing.T) {
	tree := fig3TD()
	owners := tree.Owners(6)
	if !reflect.DeepEqual(owners, []int{0, 0, 1, 1, 2, 3}) {
		t.Fatalf("Owners = %v", owners)
	}
	order := tree.CompatibleOrder(6)
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("CompatibleOrder = %v", order)
	}
	if !tree.StronglyCompatible(order) {
		t.Fatal("derived order not strongly compatible")
	}
	if !tree.Compatible(order) {
		t.Fatal("derived order not compatible")
	}
}

func TestStrongCompatibilityStricterThanCompatibility(t *testing.T) {
	// Root {0}, children {0,1} and {0,2}. Order 0,2,1 interleaves the
	// second child's variable before the first child's: still compatible
	// (parent-child pairs respect order) but swapping sibling ownership
	// violates strong compatibility only if preorder disagrees.
	tree := MustNew([][]int{{0}, {0, 1}, {0, 2}}, []int{-1, 0, 0})
	order := []int{0, 2, 1}
	if tree.StronglyCompatible(order) {
		t.Fatal("order 0,2,1 should violate strong compatibility (owner(1) ≺pre owner(2))")
	}
	if !tree.Compatible(order) {
		t.Fatal("order 0,2,1 should still be (weakly) compatible")
	}
}

func TestValidateRejectsBadTDs(t *testing.T) {
	q := queries.Path(3) // E(x1,x2), E(x2,x3)
	// Missing coverage for the second atom.
	bad1 := MustNew([][]int{{0, 1}, {2}}, []int{-1, 0})
	if err := bad1.Validate(q); err == nil {
		t.Error("uncovered atom accepted")
	}
	// Disconnected occurrence of variable 0.
	bad2 := MustNew([][]int{{0, 1}, {1, 2}, {0, 2}}, []int{-1, 0, 1})
	if err := bad2.Validate(q); err == nil {
		t.Error("disconnected variable accepted")
	}
	// Out-of-range variable index.
	bad3 := MustNew([][]int{{0, 1}, {1, 2}, {9}}, []int{-1, 0, 1})
	if err := bad3.Validate(q); err == nil {
		t.Error("out-of-range bag variable accepted")
	}
}

func TestNewRejectsMalformedTrees(t *testing.T) {
	if _, err := New([][]int{{0}}, []int{0}); err == nil {
		t.Error("self-parent accepted")
	}
	if _, err := New([][]int{{0}, {1}}, []int{-1, -1}); err == nil {
		t.Error("two roots accepted")
	}
	if _, err := New([][]int{{0}}, []int{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New([][]int{{0}, {1}}, []int{-1, 5}); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if _, err := New([][]int{{0}, {1}, {2}}, []int{-1, 2, 1}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestEliminateRedundancy(t *testing.T) {
	// Middle bag {1} is contained in both neighbors.
	tree := MustNew([][]int{{0, 1}, {1}, {1, 2}}, []int{-1, 0, 1})
	slim := tree.EliminateRedundancy()
	if slim.N() != 2 {
		t.Fatalf("redundancy elimination kept %d bags, want 2:\n%s", slim.N(), slim)
	}
	q := queries.Path(3)
	if err := slim.Validate(q); err != nil {
		t.Fatalf("slimmed TD invalid: %v", err)
	}
}

func TestGenericDecomposeProducesValidTDs(t *testing.T) {
	cases := []*cq.Query{
		queries.Path(4),
		queries.Path(7),
		queries.Cycle(4),
		queries.Cycle(6),
		queries.Lollipop(3, 2),
		queries.Clique(4),
		queries.Random(6, 0.5, 11),
		fig3Query(),
	}
	for _, q := range cases {
		tree := GenericDecompose(q, nil)
		if err := tree.Validate(q); err != nil {
			t.Errorf("GenericDecompose(%s) invalid: %v\n%s", q, err, tree)
		}
	}
}

func TestGenericDecomposeCliqueIsSingleton(t *testing.T) {
	tree := GenericDecompose(queries.Clique(4), nil)
	if tree.N() != 1 {
		t.Fatalf("clique decomposition has %d bags, want 1:\n%s", tree.N(), tree)
	}
}

func TestEnumerateValidAndDeduplicated(t *testing.T) {
	for _, q := range []*cq.Query{queries.Cycle(5), queries.Path(5), queries.Lollipop(3, 2)} {
		tds := Enumerate(q, Options{})
		if len(tds) < 2 {
			t.Fatalf("Enumerate(%s) returned %d TDs", q, len(tds))
		}
		seen := make(map[string]bool)
		for _, tree := range tds {
			if err := tree.Validate(q); err != nil {
				t.Errorf("enumerated TD invalid for %s: %v\n%s", q, err, tree)
			}
			key := tree.Canonical()
			if seen[key] {
				t.Errorf("duplicate TD enumerated for %s:\n%s", q, tree)
			}
			seen[key] = true
			order := tree.CompatibleOrder(len(q.Vars()))
			if !tree.StronglyCompatible(order) {
				t.Errorf("compatible order of enumerated TD not strongly compatible:\n%s", tree)
			}
		}
	}
}

func TestEnumerateRespectsAdhesionBound(t *testing.T) {
	tds := Enumerate(queries.Cycle(6), Options{MaxAdhesion: 2})
	for _, tree := range tds {
		if tree.MaxAdhesion() > 2 {
			t.Errorf("TD exceeds adhesion bound:\n%s", tree)
		}
	}
}

func TestSelectPrefersSmallAdhesionsOnPaths(t *testing.T) {
	q := queries.Path(5)
	tree, order := Select(q, Options{}, DefaultCostConfig(5))
	if tree.N() < 2 {
		t.Fatalf("Select returned the singleton TD for a path:\n%s", tree)
	}
	if tree.MaxAdhesion() != 1 {
		t.Errorf("path TD should have 1-dimensional adhesions, got %d:\n%s", tree.MaxAdhesion(), tree)
	}
	if !tree.StronglyCompatible(order) {
		t.Error("selected order not strongly compatible")
	}
}

func TestSelectSingletonForClique(t *testing.T) {
	q := queries.Clique(4)
	tree, _ := Select(q, Options{}, DefaultCostConfig(4))
	if tree.N() != 1 {
		t.Fatalf("clique selection returned %d bags:\n%s", tree.N(), tree)
	}
}

func TestCostOrdersCacheStructures(t *testing.T) {
	// CS2 (two 1-dim caches) must cost less than CS3 (a 2-dim cache) for
	// the {3,2}-lollipop, mirroring Fig. 11's runtime ordering.
	cs2 := MustNew([][]int{{0, 1, 2}, {2, 3}, {3, 4}}, []int{-1, 0, 1})
	cs3 := MustNew([][]int{{0, 1, 2}, {1, 2, 3}, {3, 4}}, []int{-1, 0, 1})
	cfg := DefaultCostConfig(5)
	if Cost(cs2, cfg) >= Cost(cs3, cfg) {
		t.Errorf("cost(CS2)=%.1f >= cost(CS3)=%.1f", Cost(cs2, cfg), Cost(cs3, cfg))
	}
}

func TestGaifmanGraph(t *testing.T) {
	g := Gaifman(queries.Cycle(4))
	if g.N() != 4 {
		t.Fatalf("Gaifman nodes = %d", g.N())
	}
	wantEdges := [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, wantEdges) {
		t.Fatalf("Gaifman edges = %v, want %v", got, wantEdges)
	}
}
