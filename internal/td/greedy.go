package td

import (
	"sort"

	"repro/internal/cq"
)

// This file implements the greedy, stats-free variable orderer: instead
// of scoring candidate orders with a data-dependent cost model (which
// requires building one trie set per candidate decomposition, see
// CostConfig.OrderCost), it ranks join variables by properties visible
// in the query pattern alone — constant specialization and
// shared-variable connectivity — in the spirit of "When Greedy Beats
// Optimal: Join Ordering for Pattern-Based Datalog Queries Without
// Statistics". Ranking is O(vars·atoms); no index is touched. The
// normative description of the ranking rules lives in docs/PLANNING.md.

// GreedyRank is one variable's greedy ranking key. Variables are ordered
// by Less: demoted last, constant-specialized first, then descending
// connectivity, then ascending minimum covering-atom arity, then
// ascending first-appearance index (the deterministic tiebreak).
type GreedyRank struct {
	// Demoted marks a variable pushed to the back of the ranking by
	// execution feedback (an adaptive re-plan demotes the variables of
	// persistently empty intersection levels; see GreedyConfig.Demote).
	Demoted bool
	// Constants counts the atoms covering the variable that also carry
	// at least one constant argument: the constant selects the atom's
	// relation down before the join starts, so such variables are the
	// pattern-visible selective ones and rank first.
	Constants int
	// Coverage counts the atoms covering the variable — its
	// shared-variable connectivity. High-coverage variables intersect
	// more legs per value and rank earlier.
	Coverage int
	// MinArity is the smallest arity among the covering atoms (ties on
	// Constants and Coverage break toward tighter atoms: a variable
	// constrained by a binary atom beats one constrained only by wide
	// relations). 0 when the variable is covered by no atom.
	MinArity int
	// Index is the variable's first-appearance index in query.Vars(),
	// the final deterministic tiebreak.
	Index int
}

// Less reports whether r ranks strictly before o in the greedy order.
func (r GreedyRank) Less(o GreedyRank) bool {
	if r.Demoted != o.Demoted {
		return !r.Demoted
	}
	if (r.Constants > 0) != (o.Constants > 0) {
		return r.Constants > 0
	}
	if r.Constants != o.Constants {
		return r.Constants > o.Constants
	}
	if r.Coverage != o.Coverage {
		return r.Coverage > o.Coverage
	}
	if r.MinArity != o.MinArity {
		return r.MinArity < o.MinArity
	}
	return r.Index < o.Index
}

// GreedyConfig tunes greedy selection. The zero value is the default
// configuration.
type GreedyConfig struct {
	// Demote lists variable names to push to the back of the ranking —
	// the re-plan feedback channel: an adaptive planner demotes the
	// variables of intersection levels that came up empty on every
	// attempt, so the replacement order spends the prefix work on
	// variables that actually extend assignments. Unknown names are
	// ignored.
	Demote []string
	// InversionPenalty is the cost added per ranking inversion when
	// scoring candidate decompositions (how strongly TD selection
	// prefers trees whose compatible orders agree with the greedy
	// ranking, against the structural terms of Cost). 0 means
	// DefaultInversionPenalty.
	InversionPenalty float64
}

// DefaultInversionPenalty weighs one greedy-ranking inversion against
// the structural TD cost terms (same scale as CostConfig.DepthPenalty
// units: a handful of inversions rivals one extra tree level).
const DefaultInversionPenalty = 2.0

// GreedyRanks computes the per-variable ranking keys of q (indexed like
// query.Vars()). demote names variables forced to the back (nil: none).
func GreedyRanks(q *cq.Query, demote []string) []GreedyRank {
	idx := q.VarIndex()
	ranks := make([]GreedyRank, len(idx))
	for i := range ranks {
		ranks[i].Index = i
	}
	for _, atom := range q.Atoms {
		hasConst := false
		for _, t := range atom.Args {
			if !t.IsVar() {
				hasConst = true
				break
			}
		}
		arity := len(atom.Args)
		for _, v := range atom.Vars() {
			r := &ranks[idx[v]]
			r.Coverage++
			if hasConst {
				r.Constants++
			}
			if r.MinArity == 0 || arity < r.MinArity {
				r.MinArity = arity
			}
		}
	}
	for _, name := range demote {
		if i, ok := idx[name]; ok {
			ranks[i].Demoted = true
		}
	}
	return ranks
}

// GreedyOrder returns the greedy variable order of q (variable indices,
// best first): rank every variable with GreedyRanks and sort. The whole
// computation is O(vars·atoms + vars·log vars) and touches no data —
// this is the planning-cost contrast to the probe-based cost model.
func GreedyOrder(q *cq.Query, cfg GreedyConfig) []int {
	ranks := GreedyRanks(q, cfg.Demote)
	order := make([]int, len(ranks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ranks[order[a]].Less(ranks[order[b]])
	})
	return order
}

// SelectGreedy picks a TD of q without any data-dependent cost
// evaluation — and without the §4.2 separator-driven candidate search,
// which dominates planning time once probes are gone. It considers
// exactly two structurally distinct decompositions: the min-fill clique
// tree (small bags, the caching-friendly shape) and the singleton
// fallback (CLFTJ degenerates to LFTJ). Candidates are scored by the
// structural terms of Cost (adhesion dimension, bag count, depth — no
// skew, no order-cost probes) plus an agreement penalty counting the
// greedy-ranking inversions of the candidate's greedy-compatible order.
// It returns the selected TD — its children reordered so the preorder
// follows the greedy ranking — together with that strongly compatible
// variable order. Like Select, single-bag TDs are returned only when
// nothing better exists.
func SelectGreedy(q *cq.Query, opts Options, cfg GreedyConfig) (*TD, []int) {
	numVars := len(q.Vars())
	ranks := GreedyRanks(q, cfg.Demote)
	penalty := cfg.InversionPenalty
	if penalty == 0 {
		penalty = DefaultInversionPenalty
	}
	structural := DefaultCostConfig(numVars) // no VarSkew, no OrderCost: structural terms only

	opts = opts.withDefaults()
	all := make([]int, numVars)
	for i := range all {
		all[i] = i
	}
	cands := []*TD{MustNew([][]int{all}, []int{-1})}
	if mf := MinFillDecompose(q); mf.MaxAdhesion() <= opts.MaxAdhesion {
		if !opts.KeepRedundant {
			mf = mf.EliminateRedundancy()
		}
		cands = append(cands, mf)
	}

	type scored struct {
		t     *TD
		order []int
		cost  float64
	}
	var ss []scored
	for _, t := range cands {
		rt, order := greedyReorder(t, ranks, numVars)
		cost := Cost(rt, structural) + penalty*float64(inversions(order, ranks))
		ss = append(ss, scored{rt, order, cost})
	}
	sort.SliceStable(ss, func(i, j int) bool {
		mi, mj := ss[i].t.N() > 1, ss[j].t.N() > 1
		if mi != mj {
			return mi
		}
		return ss[i].cost < ss[j].cost
	})
	return ss[0].t, ss[0].order
}

// greedyReorder returns a copy of t whose children lists are sorted by
// the best greedy rank among the variables each child subtree introduces
// (variables not already in the parent bag), together with the
// greedy-compatible order: a preorder walk appending each bag's unseen
// variables best-rank-first. The order is strongly compatible with the
// returned TD by construction — it is generated by a preorder walk, so a
// variable's position always follows its owner bag's preorder position.
func greedyReorder(t *TD, ranks []GreedyRank, numVars int) (*TD, []int) {
	// introduced[v] = best rank among subtree(v)'s variables outside
	// v's parent bag; used to sort siblings.
	best := make([]GreedyRank, t.N())
	var fill func(v int)
	fill = func(v int) {
		b := GreedyRank{Demoted: true, Index: numVars} // worst possible
		seed := false
		consider := func(r GreedyRank) {
			if !seed || r.Less(b) {
				b, seed = r, true
			}
		}
		for _, x := range t.Bags[v] {
			if x < numVars && (v == t.Root || !containsSorted(t.Bags[t.Parent[v]], x)) {
				consider(ranks[x])
			}
		}
		for _, c := range t.Children[v] {
			fill(c)
			consider(best[c])
		}
		best[v] = b
	}
	fill(t.Root)

	rt := &TD{
		Bags:     t.Bags,
		Parent:   t.Parent,
		Children: make([][]int, t.N()),
		Root:     t.Root,
	}
	for v, cs := range t.Children {
		sorted := append([]int(nil), cs...)
		sort.SliceStable(sorted, func(i, j int) bool {
			return best[sorted[i]].Less(best[sorted[j]])
		})
		rt.Children[v] = sorted
	}

	var order []int
	seen := make([]bool, numVars)
	var walk func(v int)
	walk = func(v int) {
		var fresh []int
		for _, x := range rt.Bags[v] {
			if x < numVars && !seen[x] {
				seen[x] = true
				fresh = append(fresh, x)
			}
		}
		sort.SliceStable(fresh, func(i, j int) bool {
			return ranks[fresh[i]].Less(ranks[fresh[j]])
		})
		order = append(order, fresh...)
		for _, c := range rt.Children[v] {
			walk(c)
		}
	}
	walk(rt.Root)
	for x := 0; x < numVars; x++ {
		if !seen[x] {
			order = append(order, x)
		}
	}
	return rt, order
}

// inversions counts the pairs of order positions i < j where order[j]
// ranks strictly before order[i] — how far the TD-constrained order is
// from the unconstrained greedy ranking.
func inversions(order []int, ranks []GreedyRank) int {
	n := 0
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if ranks[order[j]].Less(ranks[order[i]]) {
				n++
			}
		}
	}
	return n
}
