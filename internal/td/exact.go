package td

import (
	"math/bits"

	"repro/internal/graph"
)

// ExactTreewidth computes the treewidth of g exactly via the classic
// Held–Karp-style dynamic program over elimination orders (Bodlaender et
// al.): tw(S) — the best width achievable eliminating exactly the vertex
// set S first — satisfies
//
//	tw(S) = min over v∈S of max(tw(S\{v}), |N(v) in g[ (V\S) ∪ {v} ] ... |)
//
// where the degree term is v's neighborhood size after S\{v} was
// eliminated, i.e. the number of vertices outside S reachable from v
// through S\{v}. Exponential in |V|; intended for graphs of up to ~16
// nodes (query Gaifman graphs), where it serves as the ground truth the
// heuristics (min-fill, separator enumeration) are tested against.
func ExactTreewidth(g *graph.Undirected) int {
	n := g.N()
	if n == 0 {
		return -1 // convention: empty graph has width -1 (no bags needed)
	}
	if n > 24 {
		panic("td: ExactTreewidth is exponential; refuse graphs above 24 nodes")
	}
	adj := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			adj[v] |= 1 << uint(w)
		}
	}
	full := uint32(1)<<uint(n) - 1

	// reach(v, S): vertices outside S∪{v} adjacent to v or connected to
	// v through vertices of S (the fill-in neighborhood of v when S was
	// eliminated before it).
	reach := func(v int, s uint32) int {
		visited := uint32(1 << uint(v))
		frontier := adj[v]
		result := uint32(0)
		for frontier != 0 {
			b := frontier & -frontier
			frontier &^= b
			if visited&b != 0 {
				continue
			}
			visited |= b
			w := bits.TrailingZeros32(b)
			if s&b != 0 {
				frontier |= adj[w] &^ visited
			} else {
				result |= b
			}
		}
		return bits.OnesCount32(result)
	}

	const inf = 1 << 30
	dp := make([]int32, full+1)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = -1 // eliminating nothing costs width -1 (max with degrees later)
	for s := uint32(1); s <= full; s++ {
		rest := s
		best := int32(inf)
		for rest != 0 {
			b := rest & -rest
			rest &^= b
			v := bits.TrailingZeros32(b)
			prev := dp[s&^b]
			if prev >= best {
				continue
			}
			d := int32(reach(v, s&^b))
			w := prev
			if d > w {
				w = d
			}
			if w < best {
				best = w
			}
		}
		dp[s] = best
	}
	return int(dp[full])
}

// ExactTreewidthOfQuery computes the exact treewidth of q's Gaifman
// graph.
func ExactTreewidthOfQuery(q interface{ GaifmanEdges() [][2]int }, numVars int) int {
	g := graph.New(numVars)
	for _, e := range q.GaifmanEdges() {
		g.AddEdge(e[0], e[1])
	}
	return ExactTreewidth(g)
}
