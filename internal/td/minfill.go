package td

import (
	"sort"

	"repro/internal/cq"
)

// MinFillDecompose builds an ordered tree decomposition via the classic
// min-fill elimination heuristic: repeatedly eliminate the variable
// whose neighborhood needs the fewest fill-in edges to become a clique,
// each elimination contributing the bag {v} ∪ N(v). It complements the
// separator-driven GenericDecompose of §4 — min-fill targets small bags
// (treewidth), the paper's enumeration targets small adhesions; the
// cost model arbitrates (Fig. 11 shows why both views matter).
func MinFillDecompose(q *cq.Query) *TD {
	g := Gaifman(q)
	n := g.N()
	if n == 0 {
		return MustNew([][]int{{}}, []int{-1})
	}
	// Mutable adjacency over variable indices.
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool)
		for _, w := range g.Neighbors(v) {
			adj[v][w] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	fillIn := func(v int) int {
		nbrs := make([]int, 0, len(adj[v]))
		for w := range adj[v] {
			nbrs = append(nbrs, w)
		}
		fill := 0
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if !adj[nbrs[i]][nbrs[j]] {
					fill++
				}
			}
		}
		return fill
	}

	elimPos := make([]int, n)
	bags := make([][]int, n)
	for step := 0; step < n; step++ {
		// Pick the alive vertex with minimum fill-in; break ties by
		// degree then index for determinism.
		best, bestFill, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			f := fillIn(v)
			d := len(adj[v])
			if best == -1 || f < bestFill || (f == bestFill && d < bestDeg) {
				best, bestFill, bestDeg = v, f, d
			}
		}
		v := best
		elimPos[v] = step
		bag := []int{v}
		for w := range adj[v] {
			bag = append(bag, w)
		}
		sort.Ints(bag)
		bags[step] = bag
		// Make N(v) a clique, then remove v.
		nbrs := make([]int, 0, len(adj[v]))
		for w := range adj[v] {
			nbrs = append(nbrs, w)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				adj[nbrs[i]][nbrs[j]] = true
				adj[nbrs[j]][nbrs[i]] = true
			}
		}
		for _, w := range nbrs {
			delete(adj[w], v)
		}
		alive[v] = false
	}

	// Clique-tree linkage: bag(step) attaches to the bag of the
	// earliest-eliminated member of its neighborhood (all of which are
	// eliminated later). The final bag is the root.
	parent := make([]int, n)
	for step := 0; step < n; step++ {
		bag := bags[step]
		parentStep := -1
		for _, w := range bag {
			if elimPos[w] == step {
				continue // v itself
			}
			if parentStep == -1 || elimPos[w] < parentStep {
				parentStep = elimPos[w]
			}
		}
		parent[step] = parentStep
	}
	// The bag order "by elimination step" has children before parents;
	// reverse so the root (last elimination) comes first, matching the
	// rooted-ordered-TD convention.
	rev := func(step int) int { return n - 1 - step }
	rbags := make([][]int, n)
	rparent := make([]int, n)
	for step := 0; step < n; step++ {
		rbags[rev(step)] = bags[step]
		if parent[step] == -1 {
			rparent[rev(step)] = -1
		} else {
			rparent[rev(step)] = rev(parent[step])
		}
	}
	// A disconnected Gaifman graph yields one parentless bag per
	// component; attach the extras under the first root (bag 0).
	for i := 1; i < n; i++ {
		if rparent[i] == -1 {
			rparent[i] = 0
		}
	}
	t := MustNew(rbags, rparent)
	return t.EliminateRedundancy()
}
