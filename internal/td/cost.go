package td

import (
	"math"
	"sort"

	"repro/internal/cq"
)

// This file implements the heuristic cost model of §4.3: the TD used for
// caching should have small adhesions (low cache dimension → higher hit
// rates), many bags (more cache sites), low depth, and — when database
// statistics are available — adhesions over skewed attributes (more reuse
// per cached entry). A pluggable order-cost estimator stands in for the
// cost model of Chu et al. [7].

// CostConfig weights the terms of the TD cost. Lower cost is better.
type CostConfig struct {
	// AdhesionBase is the per-node penalty base: each non-root bag costs
	// AdhesionBase^|adhesion|, so 2-dimensional caches are much more
	// expensive than 1-dimensional ones (cf. Fig. 11's CS3 vs CS2).
	AdhesionBase float64
	// BagBonus is subtracted per bag (more bags → more cache sites).
	BagBonus float64
	// DepthPenalty is added per level of tree depth.
	DepthPenalty float64
	// SkewBonus scales the reward for adhesions over skewed variables; it
	// multiplies the average skew coefficient of adhesion variables. Used
	// only when a VarSkew function is supplied.
	SkewBonus float64
	// VarSkew optionally reports a skew coefficient (>=1, higher = more
	// skew) for a variable index, derived from database statistics.
	VarSkew func(varIdx int) float64
	// OrderCost optionally estimates the LFTJ cost of running with the
	// TD's compatible order (the Chu-et-al.-style estimate, normalized by
	// the caller). Added to the cost after a log transform to keep scales
	// comparable.
	OrderCost func(order []int) float64
	// NumVars is required by the order-cost and skew terms.
	NumVars int
}

// DefaultCostConfig returns the weights used by the experiments.
func DefaultCostConfig(numVars int) CostConfig {
	return CostConfig{
		AdhesionBase: 8,
		BagBonus:     1,
		DepthPenalty: 0.5,
		SkewBonus:    2,
		NumVars:      numVars,
	}
}

// Cost evaluates t under the configuration; lower is better. The score
// is a dimensionless weighted sum — the weights exist to make its terms
// comparable — so values are meaningful only relative to other TDs of
// the same query scored under the same configuration.
func Cost(t *TD, cfg CostConfig) float64 {
	cost := 0.0
	for v := range t.Bags {
		if v == t.Root {
			continue
		}
		adh := t.Adhesion(v)
		cost += math.Pow(cfg.AdhesionBase, float64(len(adh)))
		if cfg.VarSkew != nil && len(adh) > 0 {
			s := 0.0
			for _, x := range adh {
				s += cfg.VarSkew(x)
			}
			cost -= cfg.SkewBonus * s / float64(len(adh))
		}
	}
	cost -= cfg.BagBonus * float64(t.N())
	cost += cfg.DepthPenalty * float64(t.Depth())
	if cfg.OrderCost != nil && cfg.NumVars > 0 {
		oc := cfg.OrderCost(t.CompatibleOrder(cfg.NumVars))
		if oc > 0 {
			cost += math.Log2(1 + oc)
		}
	}
	return cost
}

// Select enumerates TDs of q (per opts) and returns the one minimizing
// Cost under cfg, together with its strongly compatible variable order.
// Single-bag TDs are returned only when nothing better exists (e.g.
// cliques, where CLFTJ degenerates to LFTJ by design). This is the
// data-dependent planner: when cfg carries VarSkew/OrderCost hooks,
// selection scans column statistics and probes tries — SelectGreedy is
// the O(vars·atoms) alternative that never touches an index.
func Select(q *cq.Query, opts Options, cfg CostConfig) (*TD, []int) {
	numVars := len(q.Vars())
	if cfg.NumVars == 0 {
		cfg.NumVars = numVars
	}
	cands := Enumerate(q, opts)
	type scored struct {
		t    *TD
		cost float64
	}
	var ss []scored
	for _, t := range cands {
		ss = append(ss, scored{t, Cost(t, cfg)})
	}
	sort.SliceStable(ss, func(i, j int) bool {
		// Prefer multi-bag TDs; the singleton has no cache sites.
		mi, mj := ss[i].t.N() > 1, ss[j].t.N() > 1
		if mi != mj {
			return mi
		}
		return ss[i].cost < ss[j].cost
	})
	best := ss[0].t
	return best, best.CompatibleOrder(numVars)
}
