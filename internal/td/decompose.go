package td

import (
	"sort"

	"repro/internal/cq"
	"repro/internal/graph"
)

// This file implements GenericDecompose / RecursiveTD (Fig. 4 of the
// paper): tree decomposition via adhesion (separator) selection, plus the
// enumeration variant of §4.2 that tries the k smallest top-level
// constrained separators.

// SeparatorChooser selects a C-constrained separating set for the induced
// subgraph sub (whose node i is original variable origOf[i]); cLocal are
// the constraint nodes in sub's local ids. It returns local node ids and
// ok=false when no (good) separator exists, which makes RecursiveTD emit
// a singleton bag.
type SeparatorChooser func(sub *graph.Undirected, origOf []int, cLocal []int) ([]int, bool)

// MinSeparatorChooser returns a chooser that picks a minimum-size
// C-constrained separating set bounded by maxAdhesion (<=0: unbounded).
func MinSeparatorChooser(maxAdhesion int) SeparatorChooser {
	return func(sub *graph.Undirected, origOf []int, cLocal []int) ([]int, bool) {
		return graph.MinConstrainedSeparator(sub, cLocal, nil, nil, maxAdhesion)
	}
}

// GenericDecompose builds an ordered TD of q (Fig. 4): it constructs the
// Gaifman graph and runs RecursiveTD with an empty constraint set, using
// the given chooser (MinSeparatorChooser(0) when nil).
func GenericDecompose(q *cq.Query, choose SeparatorChooser) *TD {
	if choose == nil {
		choose = MinSeparatorChooser(0)
	}
	g := Gaifman(q)
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	b := &tdBuilder{g: g, choose: choose}
	root := b.recursiveTD(all, nil)
	return b.finish(root)
}

// tdBuilder accumulates bags while recursing; nodes are appended in the
// order the recursion creates them and re-linked at the end.
type tdBuilder struct {
	g      *graph.Undirected
	choose SeparatorChooser

	bags     [][]int
	children [][]int
}

func (b *tdBuilder) newNode(bag []int) int {
	bb := append([]int(nil), bag...)
	sort.Ints(bb)
	b.bags = append(b.bags, bb)
	b.children = append(b.children, nil)
	return len(b.bags) - 1
}

// recursiveTD implements the subroutine RecursiveTD(g,C) of Fig. 4 on the
// induced subgraph g[nodes], with constraint set c (both in original
// variable ids). It returns the root node id of the constructed subtree;
// the root bag contains all of c.
func (b *tdBuilder) recursiveTD(nodes, c []int) int {
	sub, origOf := b.g.Induced(nodes)
	local := make(map[int]int, len(origOf))
	for i, v := range origOf {
		local[v] = i
	}
	var cLocal []int
	for _, v := range c {
		if i, ok := local[v]; ok {
			cLocal = append(cLocal, i)
		}
	}
	sort.Ints(cLocal)

	sLocal, ok := b.choose(sub, origOf, cLocal)
	if !ok {
		// Line 2-3: no good separator; return the singleton decomposition.
		return b.newNode(nodes)
	}
	s := make([]int, len(sLocal))
	for i, v := range sLocal {
		s[i] = origOf[v]
	}
	sort.Ints(s)

	// U: union of the components of g[nodes]-S that intersect C; if none,
	// an arbitrary (first) component.
	comps := sub.ComponentsAvoiding(sLocal)
	inC := make(map[int]bool, len(cLocal))
	for _, v := range cLocal {
		inC[v] = true
	}
	var u []int
	for _, comp := range comps {
		hit := false
		for _, v := range comp {
			if inC[v] {
				hit = true
				break
			}
		}
		if hit {
			u = append(u, comp...)
		}
	}
	if u == nil && len(comps) > 0 {
		u = append(u, comps[0]...)
	}
	uOrig := make([]int, len(u))
	for i, v := range u {
		uOrig[i] = origOf[v]
	}

	// Line 4: TD of g[S ∪ U] with root containing C ∪ S.
	su := unionSorted(s, uOrig)
	cs := unionSorted(c, s)
	root := b.recursiveTD(su, cs)

	// Lines 5-8: one TD per remaining component, with root containing S,
	// attached as children of root(t0) in component order.
	inSU := make(map[int]bool, len(su))
	for _, v := range su {
		inSU[v] = true
	}
	for _, comp := range comps {
		compOrig := make([]int, 0, len(comp))
		skip := false
		for _, v := range comp {
			o := origOf[v]
			if inSU[o] {
				skip = true
				break
			}
			compOrig = append(compOrig, o)
		}
		if skip || len(compOrig) == 0 {
			continue
		}
		child := b.recursiveTD(unionSorted(s, compOrig), s)
		b.children[root] = append(b.children[root], child)
	}
	return root
}

func (b *tdBuilder) finish(root int) *TD {
	parent := make([]int, len(b.bags))
	for i := range parent {
		parent[i] = -1
	}
	for v, cs := range b.children {
		for _, c := range cs {
			parent[c] = v
		}
	}
	t := MustNew(b.bags, parent)
	return t
}

// Options controls TD enumeration.
type Options struct {
	// MaxAdhesion bounds separator (hence adhesion) size; <=0: unbounded.
	MaxAdhesion int
	// MaxSeparators bounds how many top-level separators to expand
	// (default 8).
	MaxSeparators int
	// MaxTDs bounds the number of decompositions returned (default 16).
	MaxTDs int
	// KeepRedundant, when set, skips the redundancy-elimination pass.
	KeepRedundant bool
}

func (o Options) withDefaults() Options {
	if o.MaxSeparators <= 0 {
		o.MaxSeparators = 8
	}
	if o.MaxTDs <= 0 {
		o.MaxTDs = 16
	}
	if o.MaxAdhesion <= 0 {
		o.MaxAdhesion = 3
	}
	return o
}

// Enumerate generates candidate ordered TDs of q: for each of the k
// smallest top-level constrained separators (§4.2), it runs RecursiveTD
// seeded with that separator and a minimum-separator chooser below, and it
// always includes the singleton TD. Results are deduplicated. The paper's
// rationale: rather than committing to one decomposition, explore a space
// of TDs tailored to small adhesions and select by cost (§4.3).
func Enumerate(q *cq.Query, opts Options) []*TD {
	opts = opts.withDefaults()
	g := Gaifman(q)
	numVars := g.N()

	var tds []*TD
	seen := make(map[string]bool)
	add := func(t *TD) {
		if !opts.KeepRedundant {
			t = t.EliminateRedundancy()
		}
		key := t.Canonical()
		if !seen[key] {
			seen[key] = true
			tds = append(tds, t)
		}
	}

	// The singleton decomposition is always a valid fallback (it makes
	// CLFTJ coincide with LFTJ, e.g. for cliques, §5.2.2).
	all := make([]int, numVars)
	for i := range all {
		all[i] = i
	}
	add(MustNew([][]int{all}, []int{-1}))

	// The min-fill clique tree complements the separator-driven search:
	// it minimizes bag size where the enumeration minimizes adhesions.
	if mf := MinFillDecompose(q); mf.MaxAdhesion() <= opts.MaxAdhesion {
		add(mf)
	}

	// For α-acyclic queries the classical atom join tree (GYO) is a
	// natural candidate: one bag per atom, adhesions = shared variables.
	if jt, ok := AcyclicJoinTree(q); ok && jt.MaxAdhesion() <= opts.MaxAdhesion {
		add(jt.EliminateRedundancy())
	}

	tops := graph.KSmallestSeparators(g, nil, opts.MaxAdhesion, opts.MaxSeparators)
	for _, top := range tops {
		if len(tds) >= opts.MaxTDs {
			break
		}
		first := true
		chooser := func(sub *graph.Undirected, origOf []int, cLocal []int) ([]int, bool) {
			if first {
				first = false
				// Map the chosen top separator into local ids; at the top
				// level origOf is the identity.
				local := make(map[int]int, len(origOf))
				for i, v := range origOf {
					local[v] = i
				}
				s := make([]int, 0, len(top))
				for _, v := range top {
					if i, ok := local[v]; ok {
						s = append(s, i)
					}
				}
				return s, true
			}
			return graph.MinConstrainedSeparator(sub, cLocal, nil, nil, opts.MaxAdhesion)
		}
		add(GenericDecompose(q, chooser))
	}
	return tds
}
