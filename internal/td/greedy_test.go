package td

import (
	"reflect"
	"testing"

	"repro/internal/cq"
)

func varsOf(q *cq.Query, order []int) []string {
	vars := q.Vars()
	out := make([]string, len(order))
	for i, x := range order {
		out[i] = vars[x]
	}
	return out
}

func TestGreedyOrderConnectivity(t *testing.T) {
	// Triangle: all variables tie on every key, so the first-appearance
	// tiebreak decides.
	q := cq.New(
		cq.NewAtom("E", "x", "y"),
		cq.NewAtom("E", "y", "z"),
		cq.NewAtom("E", "x", "z"),
	)
	got := varsOf(q, GreedyOrder(q, GreedyConfig{}))
	if want := []string{"x", "y", "z"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("greedy order = %v, want %v", got, want)
	}

	// A lollipop: z joins the triangle to the tail and is covered by
	// three atoms — highest connectivity, so it leads; the triangle
	// peers (coverage 2) precede the tail (t2 coverage 1).
	q = cq.New(
		cq.NewAtom("E", "x", "y"),
		cq.NewAtom("E", "y", "z"),
		cq.NewAtom("E", "x", "z"),
		cq.NewAtom("E", "z", "t1"),
		cq.NewAtom("E", "t1", "t2"),
	)
	got = varsOf(q, GreedyOrder(q, GreedyConfig{}))
	if want := []string{"z", "x", "y", "t1", "t2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("greedy order = %v, want %v", got, want)
	}
}

func TestGreedyOrderConstantsFirst(t *testing.T) {
	// y is pinned through a constant-specialized atom; despite equal
	// coverage it must rank before x and z.
	q := cq.New(
		cq.NewAtom("E", "x", "y"),
		cq.NewAtom("E", "y", "z"),
		cq.Atom{Rel: "S", Args: []cq.Term{cq.V("y"), cq.C(5)}},
	)
	got := varsOf(q, GreedyOrder(q, GreedyConfig{}))
	if got[0] != "y" {
		t.Fatalf("greedy order = %v, want y first (constant-specialized)", got)
	}
}

func TestGreedyOrderArityTiebreak(t *testing.T) {
	// x and y both have coverage 1, but y's covering atom is binary
	// while x's is ternary: the tighter atom wins the tie even though x
	// appears first in the query.
	q := cq.New(
		cq.NewAtom("R", "x", "a", "b"),
		cq.NewAtom("E", "y", "a"),
	)
	ranks := GreedyRanks(q, nil)
	idx := q.VarIndex()
	if !ranks[idx["y"]].Less(ranks[idx["x"]]) {
		t.Fatalf("want y (binary atom) to outrank x (ternary atom): %+v vs %+v",
			ranks[idx["y"]], ranks[idx["x"]])
	}
}

func TestGreedyOrderDemote(t *testing.T) {
	q := cq.New(
		cq.NewAtom("E", "x", "y"),
		cq.NewAtom("E", "y", "z"),
		cq.NewAtom("E", "x", "z"),
	)
	got := varsOf(q, GreedyOrder(q, GreedyConfig{Demote: []string{"x", "nosuch"}}))
	if want := []string{"y", "z", "x"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("demoted greedy order = %v, want %v", got, want)
	}
}

// TestSelectGreedyValid checks the structural contract on a spread of
// query shapes: the selected TD is a valid decomposition, the returned
// order is a permutation strongly compatible with it, and no cost-model
// probe is involved (SelectGreedy takes no CostConfig at all).
func TestSelectGreedyValid(t *testing.T) {
	queries := map[string]*cq.Query{
		"triangle": cq.New(
			cq.NewAtom("E", "x", "y"), cq.NewAtom("E", "y", "z"), cq.NewAtom("E", "x", "z")),
		"4-path": cq.New(
			cq.NewAtom("E", "a", "b"), cq.NewAtom("E", "b", "c"), cq.NewAtom("E", "c", "d")),
		"5-cycle": cq.New(
			cq.NewAtom("E", "a", "b"), cq.NewAtom("E", "b", "c"), cq.NewAtom("E", "c", "d"),
			cq.NewAtom("E", "d", "e"), cq.NewAtom("E", "e", "a")),
		"const": cq.New(
			cq.NewAtom("E", "x", "y"),
			cq.Atom{Rel: "E", Args: []cq.Term{cq.V("y"), cq.C(3)}}),
	}
	for name, q := range queries {
		tree, order := SelectGreedy(q, Options{}, GreedyConfig{})
		if err := tree.Validate(q); err != nil {
			t.Fatalf("%s: selected TD invalid: %v", name, err)
		}
		if len(order) != len(q.Vars()) {
			t.Fatalf("%s: order %v is not a permutation of %v", name, order, q.Vars())
		}
		seen := make(map[int]bool)
		for _, x := range order {
			if seen[x] {
				t.Fatalf("%s: duplicate variable %d in order %v", name, x, order)
			}
			seen[x] = true
		}
		if !tree.StronglyCompatible(order) {
			t.Fatalf("%s: order %v not strongly compatible with\n%s", name, order, tree)
		}
	}
}

// TestSelectGreedyPrefersMultiBag mirrors Select's contract: the
// singleton TD (no cache sites) is picked only when nothing better
// exists.
func TestSelectGreedyPrefersMultiBag(t *testing.T) {
	q := cq.New(
		cq.NewAtom("E", "a", "b"), cq.NewAtom("E", "b", "c"), cq.NewAtom("E", "c", "d"))
	tree, _ := SelectGreedy(q, Options{}, GreedyConfig{})
	if tree.N() <= 1 {
		t.Fatalf("4-path selected the singleton TD:\n%s", tree)
	}
	// A clique admits only the singleton: SelectGreedy must fall back.
	q = cq.New(
		cq.NewAtom("E", "x", "y"), cq.NewAtom("E", "y", "z"), cq.NewAtom("E", "x", "z"))
	tree, _ = SelectGreedy(q, Options{}, GreedyConfig{})
	if err := tree.Validate(q); err != nil {
		t.Fatalf("triangle TD invalid: %v", err)
	}
}

func TestGreedyDemoteChangesSelectedOrder(t *testing.T) {
	q := cq.New(
		cq.NewAtom("E", "a", "b"), cq.NewAtom("E", "b", "c"), cq.NewAtom("E", "c", "d"))
	_, base := SelectGreedy(q, Options{}, GreedyConfig{})
	_, demoted := SelectGreedy(q, Options{}, GreedyConfig{Demote: []string{varsOf(q, base)[0]}})
	if reflect.DeepEqual(base, demoted) {
		t.Fatalf("demoting the first variable left the order unchanged: %v", base)
	}
}
