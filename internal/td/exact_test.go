package td

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/queries"
)

func TestExactTreewidthKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Undirected
		want int
	}{
		{"single node", graph.New(1), 0},
		{"edge", graph.FromEdges(2, [][2]int{{0, 1}}), 1},
		{"path5", pathGraph(5), 1},
		{"cycle5", cycleGraph(5), 2},
		{"cycle8", cycleGraph(8), 2},
		{"K4", cliqueGraph(4), 3},
		{"K6", cliqueGraph(6), 5},
		{"tree", graph.FromEdges(7, [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}}), 1},
		{"grid2x3", graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {1, 4}, {2, 5}}), 2},
	}
	for _, tc := range cases {
		if got := ExactTreewidth(tc.g); got != tc.want {
			t.Errorf("%s: treewidth = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func pathGraph(n int) *graph.Undirected {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycleGraph(n int) *graph.Undirected {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

func cliqueGraph(n int) *graph.Undirected {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// TestMinFillNeverBeatsExact: min-fill is a heuristic upper bound; on
// random small graphs its width must be >= the exact treewidth, and the
// exact value must be achieved by SOME decomposition method on simple
// topologies.
func TestMinFillNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		q := queries.Random(4+rng.Intn(4), 0.3+rng.Float64()*0.4, rng.Int63())
		g := Gaifman(q)
		exact := ExactTreewidth(g)
		mf := MinFillDecompose(q).Width()
		if mf < exact {
			t.Fatalf("trial %d: min-fill width %d below exact treewidth %d (impossible)", trial, mf, exact)
		}
		// Min-fill is known to be exact on graphs of treewidth <= 2.
		if exact <= 2 && mf != exact {
			t.Errorf("trial %d: min-fill width %d, exact %d on a width-%d graph",
				trial, mf, exact, exact)
		}
	}
}

func TestExactTreewidthOfQuery(t *testing.T) {
	if got := ExactTreewidthOfQuery(queries.Cycle(6), 6); got != 2 {
		t.Errorf("6-cycle treewidth = %d, want 2", got)
	}
	if got := ExactTreewidthOfQuery(queries.Clique(5), 5); got != 4 {
		t.Errorf("5-clique treewidth = %d, want 4", got)
	}
	if got := ExactTreewidthOfQuery(queries.Lollipop(3, 2), 5); got != 2 {
		t.Errorf("lollipop treewidth = %d, want 2", got)
	}
}

func TestExactTreewidthRefusesLargeGraphs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized graph")
		}
	}()
	ExactTreewidth(graph.New(30))
}
