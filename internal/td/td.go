// Package td implements ordered tree decompositions of full conjunctive
// queries (§2.3 of the paper): bags, adhesions, owners, preorder,
// compatibility and strong compatibility with variable orderings,
// validation against the query, the GenericDecompose algorithm (Fig. 4)
// over enumerated constrained separators, TD enumeration, and two
// planners that pick the decomposition and variable order CLFTJ caches
// over: the data-dependent heuristic cost model (§4.3, Select) and the
// stats-free greedy orderer (SelectGreedy). The normative description
// of both — cost-model terms, ranking rules, and the adaptive feedback
// contract layered on top — is docs/PLANNING.md.
//
// Throughout the package, variables are identified by their index in
// query.Vars() (the canonical first-appearance order). Every planner
// returns an order that is strongly compatible with its decomposition
// (StronglyCompatible): a preorder walk of the tree emitting each bag's
// unseen variables consecutively — the invariant the adhesion-keyed
// caches require.
package td

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/graph"
)

// TD is a rooted, ordered tree decomposition. Node 0..len(Bags)-1; the
// children slices define the left-to-right order that fixes the preorder.
// Bags hold sorted variable indices.
type TD struct {
	// Bags maps each tree node to its sorted set of variable indices.
	Bags [][]int
	// Parent maps each node to its parent; Parent[Root] == -1.
	Parent []int
	// Children lists each node's children in order.
	Children [][]int
	// Root is the root node.
	Root int
}

// New assembles a TD from bags and parent pointers; children order follows
// ascending node id. Bags are copied and sorted.
func New(bags [][]int, parent []int) (*TD, error) {
	n := len(bags)
	if len(parent) != n {
		return nil, fmt.Errorf("td: %d bags but %d parent entries", n, len(parent))
	}
	t := &TD{
		Bags:     make([][]int, n),
		Parent:   append([]int(nil), parent...),
		Children: make([][]int, n),
		Root:     -1,
	}
	for i, b := range bags {
		bb := append([]int(nil), b...)
		sort.Ints(bb)
		t.Bags[i] = bb
	}
	for v, p := range parent {
		if p == -1 {
			if t.Root != -1 {
				return nil, fmt.Errorf("td: multiple roots (%d and %d)", t.Root, v)
			}
			t.Root = v
			continue
		}
		if p < 0 || p >= n {
			return nil, fmt.Errorf("td: node %d has out-of-range parent %d", v, p)
		}
		t.Children[p] = append(t.Children[p], v)
	}
	if t.Root == -1 {
		return nil, fmt.Errorf("td: no root")
	}
	// Verify the parent pointers form a tree reaching all nodes.
	if len(t.Preorder()) != n {
		return nil, fmt.Errorf("td: parent pointers do not form a single tree")
	}
	return t, nil
}

// MustNew is New but panics on error; for tests and fixed experiment TDs.
func MustNew(bags [][]int, parent []int) *TD {
	t, err := New(bags, parent)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of bags.
func (t *TD) N() int { return len(t.Bags) }

// Preorder returns the nodes in preorder (root first, children
// left-to-right, each subtree fully before the next sibling).
func (t *TD) Preorder() []int {
	out := make([]int, 0, t.N())
	var walk func(v int)
	walk = func(v int) {
		out = append(out, v)
		for _, c := range t.Children[v] {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Adhesion returns the parent adhesion χ(v) ∩ χ(parent(v)) of a non-root
// node, sorted; the root's adhesion is empty.
func (t *TD) Adhesion(v int) []int {
	if v == t.Root {
		return nil
	}
	return intersectSorted(t.Bags[v], t.Bags[t.Parent[v]])
}

// Owners returns, for every variable index, the owner bag: the first bag
// in preorder containing the variable; -1 for variables in no bag.
func (t *TD) Owners(numVars int) []int {
	owner := make([]int, numVars)
	for i := range owner {
		owner[i] = -1
	}
	for _, v := range t.Preorder() {
		for _, x := range t.Bags[v] {
			if x >= 0 && x < numVars && owner[x] == -1 {
				owner[x] = v
			}
		}
	}
	return owner
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (t *TD) Depth() int {
	var depth func(v int) int
	depth = func(v int) int {
		d := 0
		for _, c := range t.Children[v] {
			if cd := depth(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return depth(t.Root)
}

// Width returns max bag size - 1, the classical treewidth of the TD.
func (t *TD) Width() int {
	w := 0
	for _, b := range t.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// MaxAdhesion returns the largest adhesion cardinality (0 for a single
// bag). Adhesion sizes are the cache dimensions in CLFTJ.
func (t *TD) MaxAdhesion() int {
	m := 0
	for v := range t.Bags {
		if v == t.Root {
			continue
		}
		if a := len(t.Adhesion(v)); a > m {
			m = a
		}
	}
	return m
}

// Validate checks that t is a tree decomposition of q (per §2.3): every
// atom's variables are contained in some bag, and for every variable the
// bags containing it induce a connected subtree.
func (t *TD) Validate(q *cq.Query) error {
	idx := q.VarIndex()
	numVars := len(idx)
	for _, b := range t.Bags {
		for _, x := range b {
			if x < 0 || x >= numVars {
				return fmt.Errorf("td: bag variable index %d out of range [0,%d)", x, numVars)
			}
		}
	}
	for ai, a := range q.Atoms {
		vars := a.Vars()
		covered := false
		for _, b := range t.Bags {
			if coversAll(b, vars, idx) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("td: atom %d (%s) covered by no bag", ai, a)
		}
	}
	for x := 0; x < numVars; x++ {
		var with []int
		for v, b := range t.Bags {
			if containsSorted(b, x) {
				with = append(with, v)
			}
		}
		if len(with) == 0 {
			return fmt.Errorf("td: variable %d appears in no bag", x)
		}
		if !t.connectedNodes(with) {
			return fmt.Errorf("td: bags containing variable %d are not connected", x)
		}
	}
	return nil
}

// connectedNodes reports whether the given tree nodes induce a connected
// subtree.
func (t *TD) connectedNodes(nodes []int) bool {
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	seen := map[int]bool{nodes[0]: true}
	queue := []int{nodes[0]}
	for q := 0; q < len(queue); q++ {
		v := queue[q]
		var nbrs []int
		if p := t.Parent[v]; p != -1 {
			nbrs = append(nbrs, p)
		}
		nbrs = append(nbrs, t.Children[v]...)
		for _, w := range nbrs {
			if in[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(seen) == len(nodes)
}

// CompatibleOrder returns a variable ordering (as variable indices) that t
// is strongly compatible with: bags in preorder contribute their owned
// variables; within a bag, adhesion variables would already be owned by
// ancestors, and the remaining variables keep ascending index order.
// Variables appearing in no bag (there are none for valid TDs) would be
// appended at the end.
func (t *TD) CompatibleOrder(numVars int) []int {
	var order []int
	seen := make([]bool, numVars)
	for _, v := range t.Preorder() {
		for _, x := range t.Bags[v] {
			if x < numVars && !seen[x] {
				seen[x] = true
				order = append(order, x)
			}
		}
	}
	for x := 0; x < numVars; x++ {
		if !seen[x] {
			order = append(order, x)
		}
	}
	return order
}

// StronglyCompatible reports whether t is strongly compatible with the
// given variable ordering (a permutation of 0..numVars-1): whenever
// owner(x_i) precedes owner(x_j) in preorder, i < j (§2.3).
func (t *TD) StronglyCompatible(order []int) bool {
	numVars := len(order)
	owner := t.Owners(numVars)
	prePos := make([]int, t.N())
	for i, v := range t.Preorder() {
		prePos[v] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			oi, oj := owner[order[i]], owner[order[j]]
			if oi == -1 || oj == -1 {
				continue
			}
			if prePos[oj] < prePos[oi] {
				return false
			}
		}
	}
	return true
}

// Compatible reports whether t is compatible with the ordering: whenever
// owner(x_i) is the parent of owner(x_j), i < j (§2.3, after [10]).
func (t *TD) Compatible(order []int) bool {
	numVars := len(order)
	owner := t.Owners(numVars)
	pos := make([]int, numVars)
	for i, x := range order {
		pos[x] = i
	}
	for xi := 0; xi < numVars; xi++ {
		for xj := 0; xj < numVars; xj++ {
			oi, oj := owner[xi], owner[xj]
			if oi == -1 || oj == -1 {
				continue
			}
			if t.Parent[oj] == oi && pos[xi] >= pos[xj] && xi != xj {
				return false
			}
		}
	}
	return true
}

// EliminateRedundancy removes bags contained in an adjacent bag,
// reattaching their children (§4.1 closing remark). The result is a valid
// TD of the same query with no bag contained in a neighbor.
func (t *TD) EliminateRedundancy() *TD {
	bags := make([][]int, len(t.Bags))
	for i, b := range t.Bags {
		bags[i] = append([]int(nil), b...)
	}
	parent := append([]int(nil), t.Parent...)
	alive := make([]bool, len(bags))
	for i := range alive {
		alive[i] = true
	}
	changed := true
	for changed {
		changed = false
		// Recompute children each pass.
		children := make([][]int, len(bags))
		root := -1
		for v, p := range parent {
			if !alive[v] {
				continue
			}
			if p == -1 {
				root = v
			} else {
				children[p] = append(children[p], v)
			}
		}
		for v := range bags {
			if !alive[v] {
				continue
			}
			p := parent[v]
			if p != -1 && subsetSorted(bags[v], bags[p]) {
				// Child contained in parent: splice out v.
				for _, c := range children[v] {
					parent[c] = p
				}
				alive[v] = false
				changed = true
				break
			}
			if p != -1 && subsetSorted(bags[p], bags[v]) && v != root {
				// Parent contained in child: promote v into p's place by
				// replacing p's bag with v's and splicing out v.
				bags[p] = append([]int(nil), bags[v]...)
				for _, c := range children[v] {
					parent[c] = p
				}
				alive[v] = false
				changed = true
				break
			}
		}
	}
	// Compact alive nodes.
	remap := make([]int, len(bags))
	var newBags [][]int
	for v := range bags {
		if alive[v] {
			remap[v] = len(newBags)
			newBags = append(newBags, bags[v])
		} else {
			remap[v] = -1
		}
	}
	newParent := make([]int, len(newBags))
	for v := range bags {
		if !alive[v] {
			continue
		}
		p := parent[v]
		for p != -1 && !alive[p] {
			p = parent[p]
		}
		if p == -1 {
			newParent[remap[v]] = -1
		} else {
			newParent[remap[v]] = remap[p]
		}
	}
	out, err := New(newBags, newParent)
	if err != nil {
		// Should be impossible; fall back to the original.
		return t
	}
	return out
}

// String renders the TD as nested bags for debugging and tool output.
func (t *TD) String() string {
	var sb strings.Builder
	var walk func(v, depth int)
	walk = func(v, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, "%v", t.Bags[v])
		if v != t.Root {
			fmt.Fprintf(&sb, " adh=%v", t.Adhesion(v))
		}
		sb.WriteByte('\n')
		for _, c := range t.Children[v] {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}

// Canonical returns a canonical string key for deduplicating TDs with the
// same shape and bags.
func (t *TD) Canonical() string {
	var sb strings.Builder
	var walk func(v int)
	walk = func(v int) {
		fmt.Fprintf(&sb, "(%v", t.Bags[v])
		for _, c := range t.Children[v] {
			walk(c)
		}
		sb.WriteByte(')')
	}
	walk(t.Root)
	return sb.String()
}

// Gaifman builds the Gaifman graph of q as a graph.Undirected over
// variable indices.
func Gaifman(q *cq.Query) *graph.Undirected {
	g := graph.New(len(q.Vars()))
	for _, e := range q.GaifmanEdges() {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

func subsetSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			return false
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return i == len(a)
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

func coversAll(bag []int, vars []string, idx map[string]int) bool {
	for _, v := range vars {
		if !containsSorted(bag, idx[v]) {
			return false
		}
	}
	return true
}
