package td

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/queries"
)

func TestMinFillProducesValidTDs(t *testing.T) {
	cases := []*cq.Query{
		queries.Path(4),
		queries.Path(7),
		queries.Cycle(4),
		queries.Cycle(6),
		queries.Lollipop(3, 2),
		queries.Clique(4),
		queries.Random(6, 0.5, 19),
		fig3Query(),
		queries.IMDBCycle(3),
	}
	for _, q := range cases {
		tree := MinFillDecompose(q)
		if err := tree.Validate(q); err != nil {
			t.Errorf("MinFillDecompose(%s) invalid: %v\n%s", q, err, tree)
		}
		order := tree.CompatibleOrder(len(q.Vars()))
		if !tree.StronglyCompatible(order) {
			t.Errorf("min-fill TD's derived order not strongly compatible for %s", q)
		}
	}
}

func TestMinFillOptimalWidthOnKnownGraphs(t *testing.T) {
	// Min-fill is exact on chordal-ish small cases: paths have width 1,
	// cycles width 2, k-cliques width k-1.
	if w := MinFillDecompose(queries.Path(6)).Width(); w != 1 {
		t.Errorf("path width = %d, want 1", w)
	}
	if w := MinFillDecompose(queries.Cycle(6)).Width(); w != 2 {
		t.Errorf("cycle width = %d, want 2", w)
	}
	if w := MinFillDecompose(queries.Clique(5)).Width(); w != 4 {
		t.Errorf("clique width = %d, want 4", w)
	}
	if w := MinFillDecompose(queries.Lollipop(3, 2)).Width(); w != 2 {
		t.Errorf("lollipop width = %d, want 2", w)
	}
}

func TestMinFillDeterministic(t *testing.T) {
	q := queries.Random(6, 0.5, 23)
	a := MinFillDecompose(q).Canonical()
	b := MinFillDecompose(q).Canonical()
	if a != b {
		t.Fatal("min-fill not deterministic")
	}
}

func TestMinFillDisconnectedQuery(t *testing.T) {
	// Two independent edges: the Gaifman graph is disconnected.
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("E", "c", "d"))
	tree := MinFillDecompose(q)
	if err := tree.Validate(q); err != nil {
		t.Fatalf("disconnected min-fill TD invalid: %v\n%s", err, tree)
	}
}

func TestMinFillRandomValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		q := queries.Random(4+rng.Intn(4), 0.3+rng.Float64()*0.4, rng.Int63())
		tree := MinFillDecompose(q)
		if err := tree.Validate(q); err != nil {
			t.Fatalf("trial %d (%s): %v\n%s", trial, q, err, tree)
		}
	}
}

func TestEnumerateIncludesMinFill(t *testing.T) {
	// For paths the min-fill TD is the chain of edges, which the
	// separator enumeration also finds — Enumerate must stay dedup'd and
	// valid with min-fill in the mix.
	q := queries.Path(5)
	tds := Enumerate(q, Options{})
	seen := make(map[string]bool)
	for _, tree := range tds {
		key := tree.Canonical()
		if seen[key] {
			t.Fatalf("duplicate after min-fill inclusion:\n%s", tree)
		}
		seen[key] = true
	}
}
