package td_test

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/td"
	"repro/internal/yannakakis"
)

func TestAcyclicityClassification(t *testing.T) {
	cases := []struct {
		name    string
		q       *cq.Query
		acyclic bool
	}{
		{"2-path", queries.Path(2), true},
		{"5-path", queries.Path(5), true},
		{"3-cycle", queries.Cycle(3), false},
		{"4-cycle", queries.Cycle(4), false},
		{"6-cycle", queries.Cycle(6), false},
		{"star", cq.New(cq.NewAtom("E", "c", "a"), cq.NewAtom("E", "c", "b"), cq.NewAtom("E", "c", "d")), true},
		// A triangle covered by a ternary atom is acyclic (the hyperedge
		// absorbs the binary ones).
		{"covered triangle", cq.New(
			cq.NewAtom("T", "a", "b", "c"),
			cq.NewAtom("E", "a", "b"),
			cq.NewAtom("E", "b", "c"),
		), true},
		{"lollipop", queries.Lollipop(3, 2), false},
	}
	for _, tc := range cases {
		if got := td.IsAcyclic(tc.q); got != tc.acyclic {
			t.Errorf("%s: IsAcyclic = %v, want %v", tc.name, got, tc.acyclic)
		}
	}
}

func TestAcyclicJoinTreeIsValidTD(t *testing.T) {
	for _, q := range []*cq.Query{
		queries.Path(3), queries.Path(6),
		cq.New(cq.NewAtom("E", "c", "a"), cq.NewAtom("E", "c", "b"), cq.NewAtom("E", "b", "d")),
	} {
		tree, ok := td.AcyclicJoinTree(q)
		if !ok {
			t.Fatalf("%s misclassified as cyclic", q)
		}
		if err := tree.Validate(q); err != nil {
			t.Fatalf("%s: join tree invalid: %v\n%s", q, err, tree)
		}
		if tree.N() != len(q.Atoms) {
			t.Errorf("%s: join tree has %d bags, want one per atom (%d)", q, tree.N(), len(q.Atoms))
		}
		order := tree.CompatibleOrder(len(q.Vars()))
		if !tree.StronglyCompatible(order) {
			t.Errorf("%s: join tree order not strongly compatible", q)
		}
	}
}

// The atom join tree must drive YTD to correct results (Yannakakis's
// original setting: one bag per atom, no worst-case-optimal sub-joins
// needed).
func TestAcyclicJoinTreeDrivesYannakakis(t *testing.T) {
	g := dataset.ErdosRenyi(22, 0.18, 91)
	db := g.DB(false)
	for _, q := range []*cq.Query{queries.Path(4), queries.Path(5)} {
		tree, ok := td.AcyclicJoinTree(q)
		if !ok {
			t.Fatal("path misclassified")
		}
		want, err := naive.Count(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := yannakakis.Count(q, db, tree, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: YTD over join tree = %d, want %d", q, got, want)
		}
	}
}
