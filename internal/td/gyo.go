package td

import (
	"sort"

	"repro/internal/cq"
)

// AcyclicJoinTree runs the classical GYO (Graham / Yu–Özsoyoğlu) ear
// reduction on the query's hypergraph (one hyperedge per atom). If the
// query is α-acyclic it returns the atom join tree — an ordered TD with
// one bag per atom, the structure Yannakakis's algorithm [25] was
// originally defined on — and true; otherwise nil and false.
//
// GYO repeatedly (1) deletes vertices occurring in exactly one hyperedge
// and (2) deletes hyperedges whose remainder is contained in another
// hyperedge, attaching the removed ear to its container. The query is
// acyclic iff the reduction ends with at most one hyperedge.
func AcyclicJoinTree(q *cq.Query) (*TD, bool) {
	idx := q.VarIndex()
	numVars := len(idx)
	m := len(q.Atoms)
	if m == 0 {
		return nil, false
	}
	// Original and reduced vertex sets per hyperedge.
	orig := make([][]int, m)
	reduced := make([]map[int]bool, m)
	for i, atom := range q.Atoms {
		set := make(map[int]bool)
		for _, name := range atom.Vars() {
			set[idx[name]] = true
		}
		vars := make([]int, 0, len(set))
		for x := range set {
			vars = append(vars, x)
		}
		sort.Ints(vars)
		orig[i] = vars
		reduced[i] = set
	}
	active := make([]bool, m)
	parent := make([]int, m)
	for i := range active {
		active[i] = true
		parent[i] = -1
	}

	occurrences := func(x int) (count, holder int) {
		for e := 0; e < m; e++ {
			if active[e] && reduced[e][x] {
				count++
				holder = e
			}
		}
		return count, holder
	}

	changed := true
	for changed {
		changed = false
		// Step 1: drop vertices unique to one hyperedge.
		for x := 0; x < numVars; x++ {
			if count, holder := occurrences(x); count == 1 && reduced[holder][x] {
				delete(reduced[holder], x)
				changed = true
			}
		}
		// Step 2: absorb hyperedges contained in another (ears).
		for e := 0; e < m && !changed; e++ {
			if !active[e] {
				continue
			}
			for f := 0; f < m; f++ {
				if e == f || !active[f] {
					continue
				}
				if subsetOf(reduced[e], reduced[f]) {
					active[e] = false
					parent[e] = f
					changed = true
					break
				}
			}
		}
	}

	remaining := -1
	for e := 0; e < m; e++ {
		if active[e] {
			if remaining != -1 {
				return nil, false // two irreducible hyperedges: cyclic
			}
			remaining = e
		}
	}
	if remaining == -1 {
		return nil, false
	}
	// Compress parent chains onto the tree (parents may themselves have
	// been absorbed later; the recorded parent is always a hyperedge that
	// was active at absorption time, so the pointers form a forest rooted
	// at the remaining edge).
	tree, err := New(orig, parent)
	if err != nil {
		return nil, false
	}
	if err := tree.Validate(q); err != nil {
		return nil, false
	}
	return tree, true
}

// IsAcyclic reports whether the query is α-acyclic.
func IsAcyclic(q *cq.Query) bool {
	_, ok := AcyclicJoinTree(q)
	return ok
}

func subsetOf(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for x := range a {
		if !b[x] {
			return false
		}
	}
	return true
}
