package graph

import (
	"container/heap"
	"sort"
)

// This file implements the paper's §4.2: enumerating C-constrained
// separating sets by increasing size with polynomial delay, using the
// Lawler–Murty procedure on top of a constrained minimum vertex cut
// (Lemma 4.3 / Theorem 4.4).
//
// A C-constrained separating set of g is a node set S such that g-S is
// disconnected and at least one connected component of g-S is disjoint
// from C. Membership constraints force nodes into S (include) or keep
// them out of S (exclude).

// MinConstrainedSeparator returns a minimum-size C-constrained separating
// set S of g with include ⊆ S and exclude ∩ S = ∅, or ok=false when none
// exists with |S| <= maxSize (maxSize <= 0 means unbounded). The result is
// sorted. Candidate separated nodes are scanned in ascending order, so the
// result is deterministic.
func MinConstrainedSeparator(g *Undirected, c, include, exclude []int, maxSize int) ([]int, bool) {
	include = uniqueSorted(include)
	exclude = uniqueSorted(exclude)
	for _, v := range include {
		if containsSorted(exclude, v) {
			return nil, false // contradictory constraints
		}
	}
	bound := int64(g.N())
	if maxSize > 0 {
		bound = int64(maxSize - len(include))
		if bound < 0 {
			return nil, false
		}
	}

	// Work on g'' = g - include; the final separator is include ∪ cut.
	sub, origOf := g.Without(include)
	local := make(map[int]int, len(origOf))
	for i, v := range origOf {
		local[v] = i
	}
	var cLocal []int
	for _, v := range uniqueSorted(c) {
		if i, ok := local[v]; ok {
			cLocal = append(cLocal, i)
		}
	}
	uncut := make([]bool, sub.N())
	for _, v := range exclude {
		if i, ok := local[v]; ok {
			uncut[i] = true
		}
	}

	best, found := minCutOverTargets(sub, cLocal, uncut, bound)
	if !found {
		return nil, false
	}
	s := make([]int, 0, len(include)+len(best))
	s = append(s, include...)
	for _, v := range best {
		s = append(s, origOf[v])
	}
	sort.Ints(s)
	// include-forced nodes could make g-S connected only if the cut logic
	// failed; assert the contract cheaply.
	if !g.IsSeparator(s) {
		return nil, false
	}
	return s, true
}

// minCutOverTargets finds the smallest vertex cut (respecting uncut) that
// leaves some component disjoint from cLocal. With a nonempty constraint
// set it minimizes over separated targets t ∉ C; with an empty one it
// minimizes over nonadjacent node pairs (any separator qualifies).
func minCutOverTargets(g *Undirected, cLocal []int, uncut []bool, bound int64) ([]int, bool) {
	var best []int
	found := false
	try := func(cut []int, ok bool) {
		if ok && (!found || len(cut) < len(best)) {
			best = append([]int(nil), cut...)
			found = true
		}
	}
	if len(cLocal) > 0 {
		inC := make([]bool, g.N())
		for _, v := range cLocal {
			inC[v] = true
		}
		for t := 0; t < g.N(); t++ {
			if inC[t] {
				continue
			}
			b := bound
			if found && int64(len(best)) < b {
				b = int64(len(best))
			}
			cut, ok := minVertexCut(g, cLocal, t, uncut, b)
			// Reject cuts that exhaust the bound; minVertexCut treats
			// bound as exclusive via maxflow(bound+1) ... it returns
			// infeasible when flow > bound, so equality is fine.
			try(cut, ok)
		}
	} else {
		for s := 0; s < g.N(); s++ {
			for t := s + 1; t < g.N(); t++ {
				if g.HasEdge(s, t) {
					continue
				}
				b := bound
				if found && int64(len(best)) < b {
					b = int64(len(best))
				}
				cut, ok := minVertexCut(g, []int{s}, t, uncut, b)
				try(cut, ok)
			}
		}
	}
	if !found || int64(len(best)) > bound {
		return nil, false
	}
	return best, true
}

// sepCandidate is one Lawler–Murty subproblem with its optimal solution.
type sepCandidate struct {
	sep     []int
	include []int
	exclude []int
}

type sepHeap []*sepCandidate

func (h sepHeap) Len() int { return len(h) }
func (h sepHeap) Less(i, j int) bool {
	if len(h[i].sep) != len(h[j].sep) {
		return len(h[i].sep) < len(h[j].sep)
	}
	return lessIntSlice(h[i].sep, h[j].sep)
}
func (h sepHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sepHeap) Push(x interface{}) { *h = append(*h, x.(*sepCandidate)) }
func (h *sepHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// EnumerateConstrainedSeparators yields C-constrained separating sets of g
// in non-decreasing size (ties broken lexicographically) until yield
// returns false, the size bound maxSize is exceeded (maxSize <= 0 means
// unbounded), or the space is exhausted. Each yielded set is fresh and
// sorted; no set is yielded twice. Stopping after k sets therefore
// guarantees the k smallest were seen (§4.2).
//
// The enumeration covers every separating set obtainable as a constrained
// minimum cut; strict supersets of an emitted separator that separate no
// additional part of the graph are not enumerated (they would only bloat
// bags in the decomposition downstream).
func EnumerateConstrainedSeparators(g *Undirected, c []int, maxSize int, yield func([]int) bool) {
	h := &sepHeap{}
	push := func(include, exclude []int) {
		sep, ok := MinConstrainedSeparator(g, c, include, exclude, maxSize)
		if ok {
			heap.Push(h, &sepCandidate{sep: sep, include: include, exclude: exclude})
		}
	}
	push(nil, nil)
	seen := make(map[string]bool)
	for h.Len() > 0 {
		cand := heap.Pop(h).(*sepCandidate)
		key := intKey(cand.sep)
		if !seen[key] {
			seen[key] = true
			if !yield(append([]int(nil), cand.sep...)) {
				return
			}
		}
		// Branch: partition the remaining space on the free elements
		// (Lawler–Murty). free = sep \ include, in sorted order.
		var free []int
		for _, v := range cand.sep {
			if !containsSorted(cand.include, v) {
				free = append(free, v)
			}
		}
		for i, v := range free {
			inc := append(append([]int(nil), cand.include...), free[:i]...)
			sort.Ints(inc)
			exc := append(append([]int(nil), cand.exclude...), v)
			sort.Ints(exc)
			push(inc, exc)
		}
	}
}

// KSmallestSeparators returns up to k C-constrained separating sets of g
// of size at most maxSize, by increasing size.
func KSmallestSeparators(g *Undirected, c []int, maxSize, k int) [][]int {
	var out [][]int
	EnumerateConstrainedSeparators(g, c, maxSize, func(s []int) bool {
		out = append(out, s)
		return len(out) < k
	})
	return out
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func intKey(xs []int) string {
	buf := make([]byte, 0, 4*len(xs))
	for _, v := range xs {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}
