package graph

// flowNet is a tiny Dinic max-flow network used to compute minimum vertex
// cuts. Nodes are dense ints; AddEdge inserts a directed edge with a
// residual back-edge of capacity 0.
type flowNet struct {
	n     int
	to    []int
	cap   []int64
	next  []int
	head  []int
	level []int
	iter  []int
}

const flowInf = int64(1) << 50

func newFlowNet(n int) *flowNet {
	f := &flowNet{n: n, head: make([]int, n)}
	for i := range f.head {
		f.head[i] = -1
	}
	return f
}

// addEdge adds u->v with capacity c and the residual v->u with capacity 0.
func (f *flowNet) addEdge(u, v int, c int64) {
	f.to = append(f.to, v)
	f.cap = append(f.cap, c)
	f.next = append(f.next, f.head[u])
	f.head[u] = len(f.to) - 1

	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.next = append(f.next, f.head[v])
	f.head[v] = len(f.to) - 1
}

func (f *flowNet) bfs(s, t int) bool {
	f.level = make([]int, f.n)
	for i := range f.level {
		f.level[i] = -1
	}
	queue := []int{s}
	f.level[s] = 0
	for q := 0; q < len(queue); q++ {
		u := queue[q]
		for e := f.head[u]; e != -1; e = f.next[e] {
			if f.cap[e] > 0 && f.level[f.to[e]] < 0 {
				f.level[f.to[e]] = f.level[u] + 1
				queue = append(queue, f.to[e])
			}
		}
	}
	return f.level[t] >= 0
}

func (f *flowNet) dfs(u, t int, pushed int64) int64 {
	if u == t {
		return pushed
	}
	for ; f.iter[u] != -1; f.iter[u] = f.next[f.iter[u]] {
		e := f.iter[u]
		v := f.to[e]
		if f.cap[e] > 0 && f.level[v] == f.level[u]+1 {
			d := f.dfs(v, t, min64(pushed, f.cap[e]))
			if d > 0 {
				f.cap[e] -= d
				f.cap[e^1] += d
				return d
			}
		}
	}
	return 0
}

// maxflow runs Dinic from s to t, aborting early once the flow value
// reaches bound (used to detect "no cut smaller than bound").
func (f *flowNet) maxflow(s, t int, bound int64) int64 {
	var flow int64
	for flow < bound && f.bfs(s, t) {
		f.iter = make([]int, f.n)
		copy(f.iter, f.head)
		for {
			d := f.dfs(s, t, flowInf)
			if d == 0 {
				break
			}
			flow += d
			if flow >= bound {
				break
			}
		}
	}
	return flow
}

// residualReach returns which nodes are reachable from s in the residual
// network (after maxflow), defining the minimum cut.
func (f *flowNet) residualReach(s int) []bool {
	seen := make([]bool, f.n)
	queue := []int{s}
	seen[s] = true
	for q := 0; q < len(queue); q++ {
		u := queue[q]
		for e := f.head[u]; e != -1; e = f.next[e] {
			if f.cap[e] > 0 && !seen[f.to[e]] {
				seen[f.to[e]] = true
				queue = append(queue, f.to[e])
			}
		}
	}
	return seen
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// minVertexCut computes a minimum-size set of "cuttable" internal vertices
// whose removal disconnects every source in srcs from dst in g, subject to
// uncuttable vertices (infinite capacity). srcs and dst themselves are
// never part of the cut. It returns the cut (sorted) and true, or nil and
// false when no finite cut exists (e.g. a source is adjacent to dst or is
// dst itself). bound caps the search: cuts of size >= bound are reported
// as infeasible.
func minVertexCut(g *Undirected, srcs []int, dst int, uncuttable []bool, bound int64) ([]int, bool) {
	n := g.N()
	// Node v splits into in=2v, out=2v+1; super-source is 2n, sink 2n+1.
	f := newFlowNet(2*n + 2)
	src := 2 * n
	sink := 2*n + 1
	isSrc := make([]bool, n)
	for _, s := range srcs {
		if s == dst {
			return nil, false
		}
		isSrc[s] = true
	}
	for v := 0; v < n; v++ {
		c := int64(1)
		if uncuttable != nil && uncuttable[v] {
			c = flowInf
		}
		if isSrc[v] || v == dst {
			c = flowInf
		}
		f.addEdge(2*v, 2*v+1, c)
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		f.addEdge(2*u+1, 2*v, flowInf)
		f.addEdge(2*v+1, 2*u, flowInf)
	}
	for _, s := range srcs {
		f.addEdge(src, 2*s, flowInf)
	}
	f.addEdge(2*dst+1, sink, flowInf)

	limit := bound
	if limit <= 0 || limit > flowInf/2 {
		limit = flowInf / 2
	}
	flow := f.maxflow(src, sink, limit+1)
	if flow > limit {
		return nil, false
	}
	reach := f.residualReach(src)
	var cut []int
	for v := 0; v < n; v++ {
		if reach[2*v] && !reach[2*v+1] {
			cut = append(cut, v)
		}
	}
	return cut, true
}
