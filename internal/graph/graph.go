// Package graph provides the small-graph toolkit behind tree decomposition
// generation: undirected graphs over integer nodes, induced subgraphs,
// connected components, minimum vertex cuts (via Dinic max-flow), and the
// paper's enumeration of constrained separating sets by increasing size
// with polynomial delay (§4.2, Lawler–Murty).
//
// Graphs here are query Gaifman graphs: a handful of nodes. The code favors
// clarity and determinism over asymptotic tuning.
package graph

import (
	"fmt"
	"sort"
)

// Undirected is a simple undirected graph on nodes 0..N-1 with no self
// loops and no parallel edges.
type Undirected struct {
	n   int
	adj []map[int]bool
}

// New returns an edgeless graph on n nodes.
func New(n int) *Undirected {
	g := &Undirected{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// FromEdges builds a graph on n nodes with the given edges.
func FromEdges(n int, edges [][2]int) *Undirected {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// N returns the number of nodes.
func (g *Undirected) N() int { return g.n }

// AddEdge inserts the undirected edge {u,v}. Self loops are ignored.
// It panics on out-of-range nodes (a programming error).
func (g *Undirected) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u,v} is an edge.
func (g *Undirected) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	return g.adj[u][v]
}

// Neighbors returns the sorted neighbor list of u.
func (g *Undirected) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Degree returns the degree of u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// Edges returns all edges {u,v} with u<v, sorted.
func (g *Undirected) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Induced returns the subgraph of g induced by the given node set (g[U] in
// the paper), together with origOf mapping the subgraph's node i back to
// the original node origOf[i]. Duplicate nodes in the input are collapsed.
func (g *Undirected) Induced(nodes []int) (sub *Undirected, origOf []int) {
	uniq := uniqueSorted(nodes)
	local := make(map[int]int, len(uniq))
	for i, v := range uniq {
		local[v] = i
	}
	sub = New(len(uniq))
	for i, v := range uniq {
		for w := range g.adj[v] {
			if j, ok := local[w]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, uniq
}

// Without returns the induced subgraph g - S (on the complement node set)
// with the same node-index mapping convention as Induced.
func (g *Undirected) Without(s []int) (sub *Undirected, origOf []int) {
	drop := make(map[int]bool, len(s))
	for _, v := range s {
		drop[v] = true
	}
	keep := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if !drop[v] {
			keep = append(keep, v)
		}
	}
	return g.Induced(keep)
}

// Components returns the connected components of g, each sorted, ordered
// by smallest member.
func (g *Undirected) Components() [][]int {
	return g.ComponentsAvoiding(nil)
}

// ComponentsAvoiding returns the connected components of g - removed.
// Nodes in removed appear in no component.
func (g *Undirected) ComponentsAvoiding(removed []int) [][]int {
	drop := make([]bool, g.n)
	for _, v := range removed {
		if v >= 0 && v < g.n {
			drop[v] = true
		}
	}
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] || drop[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for q := 0; q < len(comp); q++ {
			u := comp[q]
			for v := range g.adj[u] {
				if !seen[v] && !drop[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// IsConnected reports whether g is connected (true for the empty and
// single-node graphs).
func (g *Undirected) IsConnected() bool {
	return len(g.Components()) <= 1
}

// IsSeparator reports whether removing S disconnects g.
func (g *Undirected) IsSeparator(s []int) bool {
	return len(g.ComponentsAvoiding(s)) >= 2
}

// Clone returns a deep copy of g.
func (g *Undirected) Clone() *Undirected {
	h := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				h.AddEdge(u, v)
			}
		}
	}
	return h
}

func uniqueSorted(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}
