package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func bruteForceArticulation(g *Undirected) []int {
	base := len(g.Components())
	var out []int
	for v := 0; v < g.N(); v++ {
		if len(g.ComponentsAvoiding([]int{v})) > base {
			out = append(out, v)
		}
	}
	return out
}

func TestArticulationKnownGraphs(t *testing.T) {
	// Path 0-1-2-3-4: interior nodes are articulation points.
	if got := path(5).ArticulationPoints(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("path articulation = %v", got)
	}
	// Cycles have none.
	if got := cycle(6).ArticulationPoints(); got != nil {
		t.Fatalf("cycle articulation = %v", got)
	}
	// Cliques have none.
	if got := clique(5).ArticulationPoints(); got != nil {
		t.Fatalf("clique articulation = %v", got)
	}
	// Two triangles sharing node 2 (bowtie): 2 is the cut vertex.
	bow := New(5)
	bow.AddEdge(0, 1)
	bow.AddEdge(0, 2)
	bow.AddEdge(1, 2)
	bow.AddEdge(2, 3)
	bow.AddEdge(2, 4)
	bow.AddEdge(3, 4)
	if got := bow.ArticulationPoints(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("bowtie articulation = %v", got)
	}
}

func TestArticulationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		got := g.ArticulationPoints()
		want := bruteForceArticulation(g)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: articulation = %v, brute force = %v (edges %v)",
				trial, got, want, g.Edges())
		}
	}
}

// TestArticulationAgreesWithSeparatorEnumeration cross-checks the two
// independent implementations: the size-1 separating sets found by the
// ranked enumeration must be exactly the articulation points (for
// connected graphs, where every separator leaves a component disjoint
// from the empty constraint set).
func TestArticulationAgreesWithSeparatorEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(7)
		g := New(n)
		// Random connected graph: a random spanning path plus extras.
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i++ {
			g.AddEdge(perm[i], perm[i+1])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(i, j)
				}
			}
		}
		var size1 []int
		EnumerateConstrainedSeparators(g, nil, 1, func(s []int) bool {
			if len(s) == 1 {
				size1 = append(size1, s[0])
			}
			return true
		})
		if size1 == nil {
			size1 = []int{}
		}
		sortInts(size1)
		want := g.ArticulationPoints()
		if want == nil {
			want = []int{}
		}
		if !reflect.DeepEqual(size1, want) {
			t.Fatalf("trial %d: enumeration size-1 = %v, articulation = %v (edges %v)",
				trial, size1, want, g.Edges())
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
