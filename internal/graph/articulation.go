package graph

import "sort"

// ArticulationPoints returns the cut vertices of g (nodes whose removal
// increases the number of connected components), sorted, via Tarjan's
// linear-time low-link algorithm. They are exactly the size-1 separating
// sets, so the routine doubles as a fast path and as an independent
// cross-check for the flow-based separator enumeration.
func (g *Undirected) ArticulationPoints() []int {
	n := g.n
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	isArt := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0

	// Iterative DFS to stay safe on long paths.
	type frame struct {
		v       int
		nbrs    []int
		nextIdx int
		childCt int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{v: start, nbrs: g.Neighbors(start)}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.nextIdx < len(f.nbrs) {
				w := f.nbrs[f.nextIdx]
				f.nextIdx++
				if disc[w] == -1 {
					parent[w] = f.v
					f.childCt++
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{v: w, nbrs: g.Neighbors(w)})
				} else if w != parent[f.v] && disc[w] < low[f.v] {
					low[f.v] = disc[w]
				}
				continue
			}
			// Post-order: propagate low-links to the parent.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
				if p.v != start && low[f.v] >= disc[p.v] {
					isArt[p.v] = true
				}
			} else if f.v == start && f.childCt > 1 {
				isArt[start] = true
			}
		}
		// Root rule: the DFS root is an articulation point iff it has
		// more than one DFS child; handled above via childCt, but childCt
		// lives in the popped frame — recompute from the final frame is
		// already done when the root frame pops.
	}
	var out []int
	for v := 0; v < n; v++ {
		if isArt[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
