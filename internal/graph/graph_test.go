package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func path(n int) *Undirected {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Undirected {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func clique(n int) *Undirected {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestBasicOperations(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 1) // self loop ignored
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing")
	}
	if g.HasEdge(1, 1) {
		t.Fatal("self loop stored")
	}
	if g.HasEdge(0, 9) || g.HasEdge(-1, 0) {
		t.Fatal("out-of-range HasEdge returned true")
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if g.Degree(3) != 0 || g.Degree(1) != 2 {
		t.Fatal("degrees wrong")
	}
	if got := g.Edges(); !reflect.DeepEqual(got, [][2]int{{0, 1}, {1, 2}}) {
		t.Fatalf("Edges = %v", got)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.Components()
	want := [][]int{{0, 1}, {2, 3, 4}, {5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("Components = %v, want %v", comps, want)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !path(4).IsConnected() {
		t.Fatal("path reported disconnected")
	}
}

func TestComponentsAvoiding(t *testing.T) {
	g := path(5)
	comps := g.ComponentsAvoiding([]int{2})
	want := [][]int{{0, 1}, {3, 4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("ComponentsAvoiding = %v, want %v", comps, want)
	}
	if !g.IsSeparator([]int{2}) {
		t.Fatal("middle of path not a separator")
	}
	if g.IsSeparator([]int{0}) {
		t.Fatal("endpoint reported as separator")
	}
}

func TestInducedAndWithout(t *testing.T) {
	g := cycle(5)
	sub, orig := g.Induced([]int{0, 1, 3, 3})
	if sub.N() != 3 || !reflect.DeepEqual(orig, []int{0, 1, 3}) {
		t.Fatalf("Induced: n=%d orig=%v", sub.N(), orig)
	}
	if !sub.HasEdge(0, 1) || sub.HasEdge(1, 2) {
		t.Fatal("induced edges wrong")
	}
	wo, orig2 := g.Without([]int{2})
	if wo.N() != 4 || !reflect.DeepEqual(orig2, []int{0, 1, 3, 4}) {
		t.Fatalf("Without: n=%d orig=%v", wo.N(), orig2)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := path(3)
	h := g.Clone()
	h.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone shares storage")
	}
}

func TestMinConstrainedSeparatorOnPath(t *testing.T) {
	g := path(5)
	s, ok := MinConstrainedSeparator(g, nil, nil, nil, 0)
	if !ok || len(s) != 1 {
		t.Fatalf("min separator of path = %v ok=%v, want singleton", s, ok)
	}
	if !g.IsSeparator(s) {
		t.Fatalf("%v is not a separator", s)
	}
	// Constrain away from {0,1}: some component must avoid them.
	s, ok = MinConstrainedSeparator(g, []int{0, 1}, nil, nil, 0)
	if !ok {
		t.Fatal("no constrained separator found")
	}
	comps := g.ComponentsAvoiding(s)
	found := false
	for _, comp := range comps {
		hit := false
		for _, v := range comp {
			if v == 0 || v == 1 {
				hit = true
			}
		}
		if !hit {
			found = true
		}
	}
	if !found {
		t.Fatalf("separator %v leaves no component disjoint from C", s)
	}
}

func TestMinConstrainedSeparatorOnCycle(t *testing.T) {
	g := cycle(6)
	s, ok := MinConstrainedSeparator(g, nil, nil, nil, 0)
	if !ok || len(s) != 2 {
		t.Fatalf("cycle min separator = %v, want size 2", s)
	}
	if !g.IsSeparator(s) {
		t.Fatalf("%v does not separate the cycle", s)
	}
}

func TestMinConstrainedSeparatorClique(t *testing.T) {
	if s, ok := MinConstrainedSeparator(clique(4), nil, nil, nil, 0); ok {
		t.Fatalf("clique has no separator, got %v", s)
	}
}

func TestMinConstrainedSeparatorConstraints(t *testing.T) {
	g := path(5)
	// Force 1 in, 2 out: S must contain 1, exclude 2, still separate.
	s, ok := MinConstrainedSeparator(g, nil, []int{1}, []int{2}, 0)
	if !ok {
		t.Fatal("no separator under constraints")
	}
	if !containsSorted(s, 1) {
		t.Fatalf("include violated: %v", s)
	}
	if containsSorted(s, 2) {
		t.Fatalf("exclude violated: %v", s)
	}
	if !g.IsSeparator(s) {
		t.Fatalf("%v not a separator", s)
	}
	// Contradictory constraints.
	if _, ok := MinConstrainedSeparator(g, nil, []int{2}, []int{2}, 0); ok {
		t.Fatal("contradictory constraints accepted")
	}
	// Size bound below the minimum.
	if _, ok := MinConstrainedSeparator(cycle(6), nil, nil, nil, 1); ok {
		t.Fatal("bound 1 on a cycle should be infeasible")
	}
}

func TestEnumerateIncreasingSizeNoRepeats(t *testing.T) {
	g := cycle(6)
	var sizes []int
	seen := make(map[string]bool)
	EnumerateConstrainedSeparators(g, nil, 3, func(s []int) bool {
		if !g.IsSeparator(s) {
			t.Errorf("yielded non-separator %v", s)
		}
		key := intKey(s)
		if seen[key] {
			t.Errorf("separator %v yielded twice", s)
		}
		seen[key] = true
		sizes = append(sizes, len(s))
		return true
	})
	if len(sizes) == 0 {
		t.Fatal("no separators enumerated")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("sizes not non-decreasing: %v", sizes)
		}
	}
	// A 6-cycle has 9 size-2 separators (non-adjacent vertex pairs).
	count2 := 0
	for _, s := range sizes {
		if s == 2 {
			count2++
		}
	}
	if count2 != 9 {
		t.Errorf("found %d size-2 separators of the 6-cycle, want 9", count2)
	}
}

func TestKSmallestSeparators(t *testing.T) {
	got := KSmallestSeparators(cycle(5), nil, 2, 3)
	if len(got) != 3 {
		t.Fatalf("got %d separators, want 3", len(got))
	}
	for _, s := range got {
		if len(s) != 2 {
			t.Fatalf("5-cycle separator %v has size %d, want 2", s, len(s))
		}
	}
}

// Property: on random graphs, every enumerated set is a separator, sizes
// are non-decreasing, there are no repeats, and the first result has
// minimum size (cross-checked by brute force).
func TestEnumerationPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.45 {
					g.AddEdge(i, j)
				}
			}
		}
		bruteMin := bruteForceMinSeparator(g)
		var got [][]int
		EnumerateConstrainedSeparators(g, nil, n, func(s []int) bool {
			got = append(got, s)
			return len(got) < 10
		})
		if bruteMin == -1 {
			if len(got) != 0 {
				t.Fatalf("trial %d: graph has no separator but enumeration yielded %v", trial, got)
			}
			continue
		}
		if len(got) == 0 {
			t.Fatalf("trial %d: separator of size %d exists but none enumerated", trial, bruteMin)
		}
		if len(got[0]) != bruteMin {
			t.Fatalf("trial %d: first separator %v has size %d, brute-force min is %d",
				trial, got[0], len(got[0]), bruteMin)
		}
		for i := 1; i < len(got); i++ {
			if len(got[i]) < len(got[i-1]) {
				t.Fatalf("trial %d: non-monotone sizes %v", trial, got)
			}
			if !g.IsSeparator(got[i]) {
				t.Fatalf("trial %d: %v not a separator", trial, got[i])
			}
		}
	}
}

func bruteForceMinSeparator(g *Undirected) int {
	n := g.N()
	for size := 0; size < n-1; size++ {
		var rec func(start int, cur []int) bool
		rec = func(start int, cur []int) bool {
			if len(cur) == size {
				return g.IsSeparator(cur)
			}
			for v := start; v < n; v++ {
				if rec(v+1, append(cur, v)) {
					return true
				}
			}
			return false
		}
		if rec(0, nil) {
			return size
		}
	}
	return -1
}
