package cltj

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper (E1–E9, see DESIGN.md), each wrapping the corresponding driver
// in internal/bench at Quick scale so `go test -bench=.` finishes in
// minutes, plus per-engine micro-benchmarks on a fixed workload. Run
// `go run ./cmd/figures` for the full-scale tables.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/leapfrog"
	"repro/internal/queries"
	"repro/internal/td"
	"repro/internal/yannakakis"
)

var quickCfg = bench.Config{Quick: true}

func benchExperiment(b *testing.B, run func(bench.Config) *bench.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := run(quickCfg)
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1IntroMemAccess(b *testing.B) { benchExperiment(b, bench.IntroMemoryAccesses) }
func BenchmarkE2Figure5(b *testing.B)        { benchExperiment(b, bench.Figure5) }
func BenchmarkE3Figure6(b *testing.B)        { benchExperiment(b, bench.Figure6) }
func BenchmarkE4Figure7(b *testing.B)        { benchExperiment(b, bench.Figure7) }
func BenchmarkE5Figure8(b *testing.B)        { benchExperiment(b, bench.Figure8) }
func BenchmarkE6Figure9(b *testing.B)        { benchExperiment(b, bench.Figure9) }
func BenchmarkE7Figure10(b *testing.B)       { benchExperiment(b, bench.Figure10) }
func BenchmarkE8Figure11(b *testing.B)       { benchExperiment(b, bench.Figure11) }
func BenchmarkE9Figure13(b *testing.B)       { benchExperiment(b, bench.Figure13) }
func BenchmarkE11Parallel(b *testing.B)      { benchExperiment(b, bench.ParallelSpeedup) }
func BenchmarkE12Service(b *testing.B)       { benchExperiment(b, bench.ServiceThroughput) }
func BenchmarkE13Updates(b *testing.B)       { benchExperiment(b, bench.IncrementalUpdates) }
func BenchmarkE14Prepared(b *testing.B)      { benchExperiment(b, bench.PreparedStatements) }
func BenchmarkE15Micro(b *testing.B)         { benchExperiment(b, bench.HotPath) }
func BenchmarkE17Planner(b *testing.B)       { benchExperiment(b, bench.Planner) }
func BenchmarkE18Stream(b *testing.B)        { benchExperiment(b, bench.StreamThroughput) }
func BenchmarkE19Persist(b *testing.B)       { benchExperiment(b, bench.PersistentRestart) }
func BenchmarkE20Cluster(b *testing.B)       { benchExperiment(b, bench.ClusterScatterGather) }

// Per-engine micro-benchmarks: a fixed skewed graph and query so the
// three algorithms' costs are directly comparable in one `-bench` run.

func microDB() *DB {
	return dataset.TriadicPA(220, 4, 0.5, 33).DB(false)
}

func BenchmarkEngineLFTJCount5Path(b *testing.B) {
	db := microDB()
	q := queries.Path(5)
	inst, err := leapfrog.Build(q, db, q.Vars(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if leapfrog.Count(inst) == 0 {
			b.Fatal("zero count")
		}
	}
}

func BenchmarkEngineCLFTJCount5Path(b *testing.B) {
	db := microDB()
	q := queries.Path(5)
	plan, err := core.AutoPlan(q, db, core.AutoOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan.Count(core.Policy{}).Count == 0 {
			b.Fatal("zero count")
		}
	}
}

func BenchmarkEngineCLFTJBounded5Path(b *testing.B) {
	db := microDB()
	q := queries.Path(5)
	plan, err := core.AutoPlan(q, db, core.AutoOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pol := core.Policy{Capacity: 256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan.Count(pol).Count == 0 {
			b.Fatal("zero count")
		}
	}
}

func BenchmarkEngineYTDCount5Path(b *testing.B) {
	db := microDB()
	q := queries.Path(5)
	tree, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(len(q.Vars())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := yannakakis.New(q, db, tree, nil)
		if err != nil {
			b.Fatal(err)
		}
		if e.Count() == 0 {
			b.Fatal("zero count")
		}
	}
}

func BenchmarkEngineCLFTJCount5Cycle(b *testing.B) {
	db := dataset.CliqueUnion(200, 110, 12, 1.6, 9).DB(false)
	q := queries.Cycle(5)
	plan, err := core.AutoPlan(q, db, core.AutoOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Count(core.Policy{})
	}
}

func BenchmarkEngineLFTJCount5Cycle(b *testing.B) {
	db := dataset.CliqueUnion(200, 110, 12, 1.6, 9).DB(false)
	q := queries.Cycle(5)
	inst, err := leapfrog.Build(q, db, q.Vars(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leapfrog.Count(inst)
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out:
// support thresholds and eviction modes on a bounded cache.

func BenchmarkAblationSupportThreshold(b *testing.B) {
	db := microDB()
	q := queries.Path(5)
	plan, err := core.AutoPlan(q, db, core.AutoOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, thr := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("support=%d", thr), func(b *testing.B) {
			pol := core.Policy{SupportThreshold: thr}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.Count(pol)
			}
		})
	}
}

func BenchmarkAblationEviction(b *testing.B) {
	db := microDB()
	q := queries.Path(5)
	plan, err := core.AutoPlan(q, db, core.AutoOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    core.EvictionMode
	}{{"fifo", core.EvictFIFO}, {"reject", core.EvictNone}, {"lru", core.EvictLRU}} {
		b.Run(mode.name, func(b *testing.B) {
			pol := core.Policy{Capacity: 64, Eviction: mode.m}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.Count(pol)
			}
		})
	}
}

// BenchmarkFacadeCount covers the one-call public API path end to end
// (plan selection included), the cost a first-time user pays.
func BenchmarkFacadeCount(b *testing.B) {
	db := microDB()
	q := queries.Cycle(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Count(q, db, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Ablation(b *testing.B) { benchExperiment(b, bench.Ablation) }
