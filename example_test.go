package cltj_test

import (
	"fmt"

	cltj "repro"
)

// Example reproduces the paper's Example 3.1: the query of Fig. 3 over
// the database {R(1,1), R(1,2), R(2,1), R(2,2)} has 64 answers, and with
// caching enabled CLFTJ stores exactly six intermediate results (one per
// adhesion value of the three cached bags).
func Example() {
	db := cltj.NewDB(cltj.MustRelation("R", 2, [][]int64{
		{1, 1}, {1, 2}, {2, 1}, {2, 2},
	}))
	q, err := cltj.ParseQuery(
		"R(x1,x2), R(x2,x3), R(x3,x4), R(x2,x4), R(x3,x5), R(x4,x6)")
	if err != nil {
		panic(err)
	}
	// The ordered tree decomposition of Fig. 3: {x1,x2} over {x2,x3,x4}
	// over the leaves {x3,x5} and {x4,x6}.
	tree, err := cltj.NewTD(
		[][]int{{0, 1}, {1, 2, 3}, {2, 4}, {3, 5}},
		[]int{-1, 0, 1, 1},
	)
	if err != nil {
		panic(err)
	}
	plan, err := cltj.NewPlan(q, db, cltj.Options{TD: tree})
	if err != nil {
		panic(err)
	}
	res := plan.Count(cltj.Policy{})
	fmt.Printf("answers: %d\n", res.Count)
	fmt.Printf("cached intermediate results: %d\n", res.CachedEntries)
	// Output:
	// answers: 64
	// cached intermediate results: 6
}

// ExampleAggregate computes a semiring aggregate — the minimum total
// node weight over all triangles — with the same cached trie join.
func ExampleAggregate() {
	db := cltj.NewDB(cltj.MustRelation("E", 2, [][]int64{
		{1, 2}, {2, 3}, {1, 3}, {3, 4}, {1, 4},
	}))
	q, err := cltj.ParseQuery("E(x,y), E(y,z), E(x,z)")
	if err != nil {
		panic(err)
	}
	plan, err := cltj.NewPlan(q, db, cltj.Options{})
	if err != nil {
		panic(err)
	}
	sr := cltj.TropicalSemiring()
	cheapest := cltj.Aggregate(plan, cltj.Policy{}, sr,
		func(d int, v int64) float64 { return float64(v) })
	fmt.Printf("cheapest triangle weight: %.0f\n", cheapest)
	// Output:
	// cheapest triangle weight: 6
}
