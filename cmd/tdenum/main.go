// Command tdenum enumerates tree decompositions of a query (§4 of the
// paper): it lists the smallest constrained separators of the Gaifman
// graph in increasing size, then the candidate decompositions with their
// adhesion structure and heuristic cost.
//
// Usage:
//
//	tdenum -query 6-cycle [-max-adhesion 3] [-max-seps 10] [-max-tds 12]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cq"
	"repro/internal/graph"
	"repro/internal/queries"
	"repro/internal/td"
)

func main() {
	queryFlag := flag.String("query", "5-cycle", "query: k-path, k-cycle, k-clique, lollipop-c-t")
	maxAdh := flag.Int("max-adhesion", 3, "separator/adhesion size bound")
	maxSeps := flag.Int("max-seps", 10, "how many top-level separators to list/expand")
	maxTDs := flag.Int("max-tds", 12, "how many decompositions to print")
	flag.Parse()

	q, err := parse(*queryFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdenum:", err)
		os.Exit(1)
	}
	vars := q.Vars()
	fmt.Printf("query: %s\nvariables: %v\n\n", q, vars)

	g := td.Gaifman(q)
	fmt.Printf("smallest constrained separators (by increasing size, bound %d):\n", *maxAdh)
	seps := graph.KSmallestSeparators(g, nil, *maxAdh, *maxSeps)
	if len(seps) == 0 {
		fmt.Println("  none — the Gaifman graph has no separator (clique); only the singleton TD exists")
	}
	for _, s := range seps {
		names := make([]string, len(s))
		for i, x := range s {
			names[i] = vars[x]
		}
		fmt.Printf("  {%s}\n", strings.Join(names, ","))
	}

	fmt.Printf("\ncandidate tree decompositions:\n")
	cfg := td.DefaultCostConfig(len(vars))
	tds := td.Enumerate(q, td.Options{MaxAdhesion: *maxAdh, MaxSeparators: *maxSeps, MaxTDs: *maxTDs})
	for i, t := range tds {
		fmt.Printf("-- TD %d: bags=%d width=%d maxAdhesion=%d depth=%d cost=%.1f\n",
			i+1, t.N(), t.Width(), t.MaxAdhesion(), t.Depth(), td.Cost(t, cfg))
		fmt.Print(renderTD(t, vars))
	}

	best, orderIdx := td.Select(q, td.Options{MaxAdhesion: *maxAdh, MaxSeparators: *maxSeps, MaxTDs: *maxTDs}, cfg)
	order := make([]string, len(orderIdx))
	for d, xi := range orderIdx {
		order[d] = vars[xi]
	}
	fmt.Printf("\nselected TD (strongly compatible order %v):\n%s", order, renderTD(best, vars))
}

func renderTD(t *td.TD, vars []string) string {
	var sb strings.Builder
	var walk func(v, depth int)
	walk = func(v, depth int) {
		sb.WriteString(strings.Repeat("  ", depth+1))
		names := make([]string, len(t.Bags[v]))
		for i, x := range t.Bags[v] {
			names[i] = vars[x]
		}
		fmt.Fprintf(&sb, "{%s}", strings.Join(names, ","))
		if adh := t.Adhesion(v); len(adh) > 0 {
			anames := make([]string, len(adh))
			for i, x := range adh {
				anames[i] = vars[x]
			}
			fmt.Fprintf(&sb, "  adhesion={%s}", strings.Join(anames, ","))
		}
		sb.WriteByte('\n')
		for _, c := range t.Children[v] {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}

func parse(s string) (*cq.Query, error) {
	parts := strings.Split(s, "-")
	switch {
	case len(parts) == 2 && parts[1] == "path":
		k, err := strconv.Atoi(parts[0])
		if err == nil {
			return queries.Path(k), nil
		}
	case len(parts) == 2 && parts[1] == "cycle":
		k, err := strconv.Atoi(parts[0])
		if err == nil {
			return queries.Cycle(k), nil
		}
	case len(parts) == 2 && parts[1] == "clique":
		k, err := strconv.Atoi(parts[0])
		if err == nil {
			return queries.Clique(k), nil
		}
	case len(parts) == 3 && parts[0] == "lollipop":
		c, err1 := strconv.Atoi(parts[1])
		t, err2 := strconv.Atoi(parts[2])
		if err1 == nil && err2 == nil {
			return queries.Lollipop(c, t), nil
		}
	}
	return nil, fmt.Errorf("unknown query %q", s)
}
