// Command figures regenerates every experiment table of the paper's
// evaluation (§5) over the synthetic workloads and prints them to stdout
// (or a file). See DESIGN.md for the experiment index.
//
// Usage:
//
//	figures [-quick] [-scale N] [-only E2] [-o out.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
)

func main() {
	quick := flag.Bool("quick", false, "use small datasets so the suite runs in seconds")
	scale := flag.Int("scale", 1, "dataset scale factor (ignored with -quick)")
	only := flag.String("only", "", "run only experiments whose ID contains this substring (e.g. 'Fig. 10')")
	out := flag.String("o", "", "write tables to this file instead of stdout")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	cfg := bench.Config{Quick: *quick, Scale: dataset.Scale(*scale)}
	start := time.Now()
	n := 0
	for _, e := range bench.Experiments() {
		if *only != "" && !strings.Contains(e.ID, *only) {
			continue
		}
		fmt.Fprintln(w, e.Run(cfg).String())
		n++
	}
	fmt.Fprintf(w, "generated %d experiment tables in %s (quick=%v scale=%d)\n",
		n, time.Since(start).Round(time.Millisecond), *quick, *scale)
}
