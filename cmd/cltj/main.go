// Command cltj runs queries against an edge-list graph with a chosen
// join algorithm, reporting counts (or tuples), runtime and
// memory-access statistics.
//
// Usage:
//
//	cltj -query 5-cycle -data graph.txt [-algo clftj|lftj|ytd|pairwise]
//	     [-eval] [-cache N] [-support N] [-workers K] [-timeout DUR]
//	     [-symmetric] [-show-td] [-cpuprofile out.pprof]
//	cltj -updates deltas.txt ...                      # replay deltas first
//	cltj -queries workload.txt [-trie-budget BYTES]   # batch over one engine
//	cltj -serve :8372 [-trie-budget BYTES]            # HTTP/JSON service
//	cltj ... [-data-dir DIR]                          # persistent engine modes
//
// The query flag accepts k-path, k-cycle, k-clique, {c,t}-lollipop (as
// "lollipop-c-t") and "rand-N-P-SEED". Without -data, a built-in skewed
// sample graph is used.
//
// Batch mode (-queries) runs a workload file — one query per line,
// either explicit text ("E(x,y), E(y,z), E(x,z)") or a named shape
// ("5-cycle"); blank lines and #-comments are skipped — against one
// resident engine, so trie indices built for early queries are reused
// by later ones. Serve mode (-serve) exposes the same engine over HTTP
// (POST /query, POST /update, GET /stats, GET /healthz; see
// internal/server).
//
// Update replay (-updates) batch-applies a delta file to the loaded
// dataset through the versioned stores before any query runs — the
// offline counterpart of the daemon's live POST /update. One op per
// line:
//
//	"+ E 7 9"     insert tuple (7,9) into relation E
//	"- E 1 2"     delete tuple (1,2) from relation E
//	"apply"       flush pending ops as one delta per relation
//
// Blank lines and #-comments are skipped; a final implicit "apply"
// flushes the tail. Each flushed delta advances the relation's version
// exactly like a live update would.
//
// The resident-engine modes accept -data-dir DIR to run persistently
// (format: docs/FORMAT.md), exactly like cltjd: a cold start snapshots
// the loaded dataset into the directory, updates become durable, and
// the next start with the same directory boots warm — snapshots
// verified and mmap'd, write-ahead logs replayed, dataset flags
// ignored — with trie indices opened from disk instead of rebuilt.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/leapfrog"
	"repro/internal/pairwise"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/td"
	"repro/internal/yannakakis"
)

// relFlags collects repeated -rel name=path flags.
type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI contract is
// testable (and golden-tested) in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cltj", flag.ContinueOnError)
	fs.SetOutput(stderr)
	queryFlag := fs.String("query", "4-cycle", "query: k-path, k-cycle, k-clique, lollipop-c-t, rand-N-P-SEED")
	qFlag := fs.String("q", "", "explicit query text, e.g. 'E(x,y), E(y,z), E(x,z)' (overrides -query)")
	var rels relFlags
	fs.Var(&rels, "rel", "load a relation from a whitespace-delimited file: -rel R=path (repeatable)")
	dataFlag := fs.String("data", "", "edge-list file for relation E (default: built-in skewed sample graph)")
	algoFlag := fs.String("algo", "clftj", "algorithm: clftj, lftj, ytd, pairwise")
	evalFlag := fs.Bool("eval", false, "enumerate tuples instead of counting (prints the first few)")
	cacheFlag := fs.Int("cache", 0, "CLFTJ cache capacity (0 = unbounded)")
	supportFlag := fs.Int("support", 0, "CLFTJ support threshold")
	workersFlag := fs.Int("workers", 1, "worker goroutines for clftj and for lftj counting (0 = one per core, 1 = sequential); other algorithms ignore it; -eval with workers > 1 materializes the full result before printing")
	ordererFlag := fs.String("orderer", "", "planning strategy for clftj and the resident modes: cost (default; full cost model), greedy (stats-free pattern ranking) or adaptive (greedy + feedback-driven re-planning of cached plans)")
	batchFlag := fs.Int("batch-size", 0, "block size for batched clftj execution: advance the deepest trie level in blocks of up to this many keys (0 = scalar loops); results, order and completed-run statistics are identical to scalar")
	timeoutFlag := fs.Duration("timeout", 0, "wall-clock budget covering planning, index build and the join (clftj and lftj; 0 = unlimited): past it the run unwinds cooperatively and cltj exits nonzero")
	symFlag := fs.Bool("symmetric", false, "treat edges as undirected (add both directions)")
	showTD := fs.Bool("show-td", false, "print the selected tree decomposition")
	queriesFlag := fs.String("queries", "", "batch mode: run the workload file (one query per line) against one resident engine")
	updatesFlag := fs.String("updates", "", "replay a delta file ('+ R v...' / '- R v...' / 'apply' lines) against the dataset before running")
	serveFlag := fs.String("serve", "", "serve mode: listen on this address (e.g. :8372) and answer HTTP/JSON queries over the loaded dataset")
	budgetFlag := fs.Int64("trie-budget", 0, "resident trie byte budget for -queries/-serve (0 = unbounded)")
	dataDirFlag := fs.String("data-dir", "", "persistent data directory for -queries/-serve: snapshots + write-ahead logs + trie index files; a populated directory boots warm (dataset flags are ignored) and updates become durable")
	cpuProfileFlag := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file (analyze with `go tool pprof`)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cltj:", err)
		return 1
	}
	if !core.Orderer(*ordererFlag).Valid() {
		return fail(fmt.Errorf("unknown -orderer %q (want cost, greedy or adaptive)", *ordererFlag))
	}
	if *cpuProfileFlag != "" {
		pf, err := os.Create(*cpuProfileFlag)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	// -data-dir only makes sense where an engine owns the data: the
	// resident modes. -updates replays offline through bare stores,
	// bypassing the WAL, so combining them would silently drop
	// durability — reject it.
	if *dataDirFlag != "" {
		if *serveFlag == "" && *queriesFlag == "" {
			return fail(fmt.Errorf("-data-dir requires a resident engine mode (-serve or -queries)"))
		}
		if *updatesFlag != "" {
			return fail(fmt.Errorf("-data-dir persists updates through the engine; apply them live (POST /update) instead of -updates"))
		}
	}

	// The persistent modes defer loading to server.OpenEngine, which
	// skips it entirely on a warm boot; everything else loads up front.
	var db *relation.DB
	var err error
	if *dataDirFlag == "" {
		var g *dataset.Graph
		db, g, err = dataset.LoadDB(rels, *dataFlag, *symFlag)
		if err != nil {
			return fail(err)
		}
		if g != nil {
			fmt.Fprintf(stdout, "graph %s: %d nodes, %d edges\n", g.Name, g.N, g.NumEdges())
		} else {
			for _, name := range db.Names() {
				r, err := db.Get(name)
				if err != nil {
					return fail(err)
				}
				fmt.Fprintf(stdout, "relation %s: %d tuples (arity %d)\n", name, r.Len(), r.Arity())
			}
		}

		if *updatesFlag != "" {
			db, err = replayUpdates(db, *updatesFlag, stdout)
			if err != nil {
				return fail(err)
			}
		}
	}

	// The single-query paths default -workers to 1 (the paper's
	// sequential protocol); the resident-engine modes default to one
	// worker per core, matching cltjd, unless -workers was set.
	engineWorkers := 0
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			engineWorkers = *workersFlag
		}
	})
	// -timeout bounds one query run; the resident-engine modes take
	// per-request budgets instead (timeout_ms on each request), so a
	// global flag there would be silently meaningless — reject it.
	if *timeoutFlag > 0 && (*serveFlag != "" || *queriesFlag != "") {
		return fail(fmt.Errorf("-timeout applies to single-query runs; in -serve/-queries modes set timeout_ms per request"))
	}
	if *serveFlag != "" || *queriesFlag != "" {
		cfg := server.Config{Workers: engineWorkers, TrieBudget: *budgetFlag, BatchSize: *batchFlag, DataDir: *dataDirFlag, Orderer: *ordererFlag}
		engine, err := openEngine(db, cfg, rels, *dataFlag, *symFlag, stdout)
		if err != nil {
			return fail(err)
		}
		defer engine.Close()
		if *serveFlag != "" {
			fmt.Fprintf(stdout, "cltj service listening on %s (POST /query, POST /update, GET /stats, GET /healthz)\n", *serveFlag)
			if err := http.ListenAndServe(*serveFlag, server.NewHandler(engine)); err != nil {
				return fail(err)
			}
			return 0
		}
		return runBatch(engine, *queriesFlag, stdout, stderr)
	}

	var q *cq.Query
	if *qFlag != "" {
		q, err = cq.Parse(*qFlag)
	} else {
		q, err = parseQuery(*queryFlag)
	}
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "query: %s\n", q)

	// -timeout starts its clock here, so the budget covers plan
	// selection and index construction as well as the join (a build
	// that overruns it trips the join's upfront deadline check). The
	// cooperative cancellation checks live in the trie-join engines,
	// so only clftj and lftj honor it.
	ctx := context.Background()
	if *timeoutFlag > 0 {
		if *algoFlag != "clftj" && *algoFlag != "lftj" {
			return fail(fmt.Errorf("-timeout requires -algo clftj or lftj (got %q)", *algoFlag))
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeoutFlag)
		defer cancel()
	}

	var c stats.Counters
	policy := core.Policy{Capacity: *cacheFlag, SupportThreshold: *supportFlag, Workers: *workersFlag, BatchSize: *batchFlag}
	start := time.Now()
	var count int64
	switch *algoFlag {
	case "clftj":
		plan, err := core.AutoPlan(q, db, core.AutoOptions{Counters: &c, Orderer: core.Orderer(*ordererFlag)})
		if err != nil {
			return fail(err)
		}
		if *showTD {
			fmt.Fprintf(stdout, "selected TD (order %v):\n%s", plan.Order(), plan.TD())
		}
		start = time.Now()
		if *evalFlag {
			count, err = evalSome(stdout, plan.Order(), func(emit func([]int64) bool) error {
				_, err := plan.EvalParallelCtx(ctx, policy, emit)
				return err
			})
		} else {
			var res core.CountResult
			res, err = plan.CountParallelCtx(ctx, policy)
			count = res.Count
		}
		if err != nil {
			return fail(err)
		}
	case "lftj":
		inst, err := leapfrog.Build(q, db, q.Vars(), &c)
		if err != nil {
			return fail(err)
		}
		start = time.Now()
		if *evalFlag {
			count, err = evalSome(stdout, inst.Order(), func(emit func([]int64) bool) error {
				return leapfrog.EvalCtx(ctx, inst, emit)
			})
		} else {
			count, err = leapfrog.ParallelCountCtx(ctx, inst, *workersFlag)
		}
		if err != nil {
			return fail(err)
		}
	case "ytd":
		tree, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(len(q.Vars())))
		if *showTD {
			fmt.Fprintf(stdout, "selected TD:\n%s", tree)
		}
		e, err := yannakakis.New(q, db, tree, &c)
		if err != nil {
			return fail(err)
		}
		if *evalFlag {
			count, _ = evalSome(stdout, q.Vars(), func(emit func([]int64) bool) error {
				e.Eval(emit)
				return nil
			})
		} else {
			count = e.Count()
		}
	case "pairwise":
		if *evalFlag {
			var err error
			count, err = evalSome(stdout, q.Vars(), func(emit func([]int64) bool) error {
				return pairwise.Eval(q, db, &c, emit)
			})
			if err != nil {
				return fail(err)
			}
		} else {
			res, err := pairwise.Count(q, db, &c)
			if err != nil {
				return fail(err)
			}
			count = res.Count
		}
	default:
		return fail(fmt.Errorf("unknown algorithm %q", *algoFlag))
	}
	dur := time.Since(start)

	verb := "count"
	if *evalFlag {
		verb = "results"
	}
	fmt.Fprintf(stdout, "%s: %d\ntime: %s\naccesses: %s\n", verb, count, dur.Round(time.Microsecond), c.String())
	if c.CacheHits+c.CacheMisses > 0 {
		fmt.Fprintf(stdout, "cache hit rate: %.2f\n", c.HitRate())
	}
	return 0
}

// replayUpdates batch-applies a delta file to db through versioned
// relation stores (see the package comment for the line format) and
// returns the database at the final versions. Pending ops flush as one
// delta per relation on each "apply" line and at end of file, so a
// replayed history advances versions exactly as live updates would.
func replayUpdates(db *relation.DB, path string, stdout io.Writer) (*relation.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	stores := make(map[string]*relation.Store)
	var order []string // flush in first-touched order, for stable output
	type delta struct{ ins, del [][]int64 }
	pending := make(map[string]*delta)
	applied := 0

	flush := func() error {
		for _, name := range order {
			d := pending[name]
			if d == nil || (len(d.ins) == 0 && len(d.del) == 0) {
				continue
			}
			v, changed, err := stores[name].ApplyDelta(d.ins, d.del)
			if err != nil {
				return err
			}
			if changed {
				applied++
				fmt.Fprintf(stdout, "update %s: +%d -%d -> version %d (%d tuples)\n",
					name, len(d.ins), len(d.del), v.Num, v.Rel.Len())
			} else {
				fmt.Fprintf(stdout, "update %s: +%d -%d -> no-op (version %d)\n",
					name, len(d.ins), len(d.del), v.Num)
			}
			pending[name] = &delta{}
		}
		return nil
	}

	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "apply" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || (fields[0] != "+" && fields[0] != "-") {
			return nil, fmt.Errorf("%s:%d: want '+ R v...', '- R v...' or 'apply', got %q", path, lineNo, line)
		}
		name := fields[1]
		tup := make([]int64, len(fields)-2)
		for i, fv := range fields[2:] {
			v, err := strconv.ParseInt(fv, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad value %q", path, lineNo, fv)
			}
			tup[i] = v
		}
		if _, ok := stores[name]; !ok {
			rel, err := db.Get(name)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
			}
			stores[name] = relation.NewStore(rel)
			pending[name] = &delta{}
			order = append(order, name)
		}
		if fields[0] == "+" {
			pending[name].ins = append(pending[name].ins, tup)
		} else {
			pending[name].del = append(pending[name].del, tup)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}

	out := relation.NewDB()
	for _, name := range db.Names() {
		r, err := db.Get(name)
		if err != nil {
			continue
		}
		out.Put(r)
	}
	for name, st := range stores {
		out.Put(st.Version().Rel.Rename(name))
	}
	fmt.Fprintf(stdout, "updates: %d deltas applied\n", applied)
	return out, nil
}

// openEngine builds the resident engine for the -serve and -queries
// modes. With an empty Config.DataDir it wraps the already-loaded db
// in a memory-only engine; with a data directory it routes through
// server.OpenEngine, loading the dataset only on a cold start and
// echoing the warm/cold outcome plus the served relation inventory.
func openEngine(db *relation.DB, cfg server.Config, rels relFlags, dataPath string, symmetric bool, stdout io.Writer) (*server.Engine, error) {
	if cfg.DataDir == "" {
		return server.NewEngine(db, cfg), nil
	}
	engine, warm, err := server.OpenEngine(cfg, func() (*relation.DB, error) {
		db, _, err := dataset.LoadDB(rels, dataPath, symmetric)
		return db, err
	})
	if err != nil {
		return nil, err
	}
	if warm {
		fmt.Fprintf(stdout, "warm start: %s snapshots mmap'd, wal replayed, dataset flags skipped\n", cfg.DataDir)
	} else {
		fmt.Fprintf(stdout, "cold start: dataset persisted to %s (next start will be warm)\n", cfg.DataDir)
	}
	for _, info := range engine.Stats().Relations {
		fmt.Fprintf(stdout, "relation %s: %d tuples (arity %d, version %d)\n", info.Name, info.Tuples, info.Arity, info.Version)
	}
	return engine, nil
}

// runBatch executes a workload file against one resident engine: the
// trie registry warms on the first queries and later ones reuse it, the
// amortization a per-invocation CLI can never get.
func runBatch(engine *server.Engine, path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "cltj:", err)
		return 1
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	n, failed := 0, 0
	start := time.Now()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		text := line
		if !strings.Contains(line, "(") {
			q, err := parseQuery(line)
			if err != nil {
				fmt.Fprintf(stdout, "[%d] %s: error: %v\n", n, line, err)
				failed++
				n++
				continue
			}
			text = q.String()
		}
		resp, err := engine.Do(server.Request{Query: text})
		if err != nil {
			fmt.Fprintf(stdout, "[%d] %s: error: %v\n", n, line, err)
			failed++
			n++
			continue
		}
		fmt.Fprintf(stdout, "[%d] %s: count=%d builds=%d accesses=%d\n",
			n, line, resp.Count, resp.Stats.Counters.TrieBuilds, resp.Stats.Counters.Total())
		n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "cltj:", err)
		return 1
	}
	s := engine.Stats()
	fmt.Fprintf(stdout, "batch: %d queries in %s\n", n, time.Since(start).Round(time.Microsecond))
	fmt.Fprintf(stdout, "engine: lifetime %s\n", s.Lifetime.String())
	fmt.Fprintf(stdout, "registry: %s\n", s.Registry.String())
	if failed > 0 {
		return 1
	}
	return 0
}

// evalSome drives an evaluation, printing the first 5 tuples and
// returning the total (and runEval's error, e.g. a timeout).
func evalSome(stdout io.Writer, order []string, runEval func(emit func([]int64) bool) error) (int64, error) {
	var n int64
	err := runEval(func(mu []int64) bool {
		if n < 5 {
			parts := make([]string, len(mu))
			for i, v := range mu {
				parts[i] = fmt.Sprintf("%s=%d", order[i], v)
			}
			fmt.Fprintln(stdout, "  "+strings.Join(parts, " "))
		}
		n++
		return true
	})
	if n > 5 {
		fmt.Fprintf(stdout, "  ... (%d more)\n", n-5)
	}
	return n, err
}

func parseQuery(s string) (*cq.Query, error) {
	parts := strings.Split(s, "-")
	switch {
	case len(parts) == 2 && parts[1] == "path":
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad path query %q", s)
		}
		return queries.Path(k), nil
	case len(parts) == 2 && parts[1] == "cycle":
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad cycle query %q", s)
		}
		return queries.Cycle(k), nil
	case len(parts) == 2 && parts[1] == "clique":
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad clique query %q", s)
		}
		return queries.Clique(k), nil
	case len(parts) == 3 && parts[0] == "lollipop":
		c, err1 := strconv.Atoi(parts[1])
		t, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad lollipop query %q", s)
		}
		return queries.Lollipop(c, t), nil
	case len(parts) == 4 && parts[0] == "rand":
		n, err1 := strconv.Atoi(parts[1])
		p, err2 := strconv.ParseFloat(parts[2], 64)
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad random query %q", s)
		}
		return queries.Random(n, p, seed), nil
	}
	return nil, fmt.Errorf("unknown query %q (try 5-cycle, 4-path, lollipop-3-2, rand-5-0.4-7)", s)
}
