// Command cltj runs a single query against an edge-list graph with a
// chosen join algorithm, reporting the count (or tuples), runtime and
// memory-access statistics.
//
// Usage:
//
//	cltj -query 5-cycle -data graph.txt [-algo clftj|lftj|ytd|pairwise]
//	     [-eval] [-cache N] [-support N] [-workers K] [-symmetric] [-show-td]
//
// The query flag accepts k-path, k-cycle, k-clique, {c,t}-lollipop (as
// "lollipop-c-t") and "rand-N-P-SEED". Without -data, a built-in skewed
// sample graph is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/leapfrog"
	"repro/internal/pairwise"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
	"repro/internal/yannakakis"
)

// relFlags collects repeated -rel name=path flags.
type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	queryFlag := flag.String("query", "4-cycle", "query: k-path, k-cycle, k-clique, lollipop-c-t, rand-N-P-SEED")
	qFlag := flag.String("q", "", "explicit query text, e.g. 'E(x,y), E(y,z), E(x,z)' (overrides -query)")
	var rels relFlags
	flag.Var(&rels, "rel", "load a relation from a whitespace-delimited file: -rel R=path (repeatable)")
	dataFlag := flag.String("data", "", "edge-list file for relation E (default: built-in skewed sample graph)")
	algoFlag := flag.String("algo", "clftj", "algorithm: clftj, lftj, ytd, pairwise")
	evalFlag := flag.Bool("eval", false, "enumerate tuples instead of counting (prints the first few)")
	cacheFlag := flag.Int("cache", 0, "CLFTJ cache capacity (0 = unbounded)")
	supportFlag := flag.Int("support", 0, "CLFTJ support threshold")
	workersFlag := flag.Int("workers", 1, "worker goroutines for clftj and for lftj counting (0 = one per core, 1 = sequential); other algorithms ignore it; -eval with workers > 1 materializes the full result before printing")
	symFlag := flag.Bool("symmetric", false, "treat edges as undirected (add both directions)")
	showTD := flag.Bool("show-td", false, "print the selected tree decomposition")
	flag.Parse()

	var q *cq.Query
	var err error
	if *qFlag != "" {
		q, err = cq.Parse(*qFlag)
	} else {
		q, err = parseQuery(*queryFlag)
	}
	if err != nil {
		fail(err)
	}

	var db *relation.DB
	if len(rels) > 0 {
		db = relation.NewDB()
		for _, spec := range rels {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				fail(fmt.Errorf("bad -rel %q, want name=path", spec))
			}
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			r, err := relation.LoadRelation(name, f, relation.LoadOptions{Comment: "#"})
			f.Close()
			if err != nil {
				fail(err)
			}
			db.Put(r)
			fmt.Printf("relation %s: %d tuples (arity %d)\n", name, r.Len(), r.Arity())
		}
		fmt.Printf("query: %s\n", q)
	} else {
		g, err := loadGraph(*dataFlag)
		if err != nil {
			fail(err)
		}
		db = g.DB(*symFlag)
		fmt.Printf("graph %s: %d nodes, %d edges; query: %s\n", g.Name, g.N, g.NumEdges(), q)
	}

	var c stats.Counters
	policy := core.Policy{Capacity: *cacheFlag, SupportThreshold: *supportFlag, Workers: *workersFlag}
	start := time.Now()
	var count int64
	switch *algoFlag {
	case "clftj":
		plan, err := core.AutoPlan(q, db, core.AutoOptions{Counters: &c})
		if err != nil {
			fail(err)
		}
		if *showTD {
			fmt.Printf("selected TD (order %v):\n%s", plan.Order(), plan.TD())
		}
		start = time.Now()
		if *evalFlag {
			count = evalSome(plan.Order(), func(emit func([]int64) bool) {
				plan.EvalParallel(policy, emit)
			})
		} else {
			count = plan.CountParallel(policy).Count
		}
	case "lftj":
		inst, err := leapfrog.Build(q, db, q.Vars(), &c)
		if err != nil {
			fail(err)
		}
		start = time.Now()
		if *evalFlag {
			count = evalSome(inst.Order(), func(emit func([]int64) bool) {
				leapfrog.Eval(inst, emit)
			})
		} else {
			count = leapfrog.ParallelCount(inst, *workersFlag)
		}
	case "ytd":
		tree, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(len(q.Vars())))
		if *showTD {
			fmt.Printf("selected TD:\n%s", tree)
		}
		e, err := yannakakis.New(q, db, tree, &c)
		if err != nil {
			fail(err)
		}
		if *evalFlag {
			count = evalSome(q.Vars(), func(emit func([]int64) bool) { e.Eval(emit) })
		} else {
			count = e.Count()
		}
	case "pairwise":
		if *evalFlag {
			vars := q.Vars()
			count = evalSome(vars, func(emit func([]int64) bool) {
				if err := pairwise.Eval(q, db, &c, emit); err != nil {
					fail(err)
				}
			})
		} else {
			res, err := pairwise.Count(q, db, &c)
			if err != nil {
				fail(err)
			}
			count = res.Count
		}
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algoFlag))
	}
	dur := time.Since(start)

	verb := "count"
	if *evalFlag {
		verb = "results"
	}
	fmt.Printf("%s: %d\ntime: %s\naccesses: %s\n", verb, count, dur.Round(time.Microsecond), c.String())
	if c.CacheHits+c.CacheMisses > 0 {
		fmt.Printf("cache hit rate: %.2f\n", c.HitRate())
	}
}

// evalSome drives an evaluation, printing the first 5 tuples and
// returning the total.
func evalSome(order []string, run func(emit func([]int64) bool)) int64 {
	var n int64
	run(func(mu []int64) bool {
		if n < 5 {
			parts := make([]string, len(mu))
			for i, v := range mu {
				parts[i] = fmt.Sprintf("%s=%d", order[i], v)
			}
			fmt.Println("  " + strings.Join(parts, " "))
		}
		n++
		return true
	})
	if n > 5 {
		fmt.Printf("  ... (%d more)\n", n-5)
	}
	return n
}

func parseQuery(s string) (*cq.Query, error) {
	parts := strings.Split(s, "-")
	switch {
	case len(parts) == 2 && parts[1] == "path":
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad path query %q", s)
		}
		return queries.Path(k), nil
	case len(parts) == 2 && parts[1] == "cycle":
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad cycle query %q", s)
		}
		return queries.Cycle(k), nil
	case len(parts) == 2 && parts[1] == "clique":
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad clique query %q", s)
		}
		return queries.Clique(k), nil
	case len(parts) == 3 && parts[0] == "lollipop":
		c, err1 := strconv.Atoi(parts[1])
		t, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad lollipop query %q", s)
		}
		return queries.Lollipop(c, t), nil
	case len(parts) == 4 && parts[0] == "rand":
		n, err1 := strconv.Atoi(parts[1])
		p, err2 := strconv.ParseFloat(parts[2], 64)
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad random query %q", s)
		}
		return queries.Random(n, p, seed), nil
	}
	return nil, fmt.Errorf("unknown query %q (try 5-cycle, 4-path, lollipop-3-2, rand-5-0.4-7)", s)
}

func loadGraph(path string) (*dataset.Graph, error) {
	if path == "" {
		return dataset.WikiVote(1), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Load(path, f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cltj:", err)
	os.Exit(1)
}
