package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The golden files pin the CLI contract: flags, count output and stats
// formatting. Regenerate deliberately with `go test ./cmd/cltj -update`
// after an intentional output change.
var update = flag.Bool("update", false, "rewrite golden files")

// durations is the one nondeterministic part of the output.
var durations = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|us|ms|m?s)\b`)

func normalize(out []byte) []byte {
	return durations.ReplaceAll(out, []byte("<dur>"))
}

func runGolden(t *testing.T, name string, args []string, wantExit int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if got := run(args, &stdout, &stderr); got != wantExit {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", got, wantExit, &stdout, &stderr)
	}
	got := normalize(append(stdout.Bytes(), stderr.Bytes()...))

	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/cltj -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

func TestCLIGoldenCount(t *testing.T) {
	runGolden(t, "count_triangle", []string{"-query", "3-clique", "-workers", "1"}, 0)
}

func TestCLIGoldenCountLFTJ(t *testing.T) {
	runGolden(t, "count_lftj_4cycle", []string{"-query", "4-cycle", "-algo", "lftj", "-workers", "1"}, 0)
}

func TestCLIGoldenEval(t *testing.T) {
	runGolden(t, "eval_3path", []string{"-query", "3-path", "-eval", "-workers", "1"}, 0)
}

func TestCLIGoldenExplicitQuery(t *testing.T) {
	runGolden(t, "explicit_query", []string{"-q", "E(x,y), E(y,x)", "-workers", "1", "-cache", "16"}, 0)
}

func TestCLIGoldenBatch(t *testing.T) {
	dir := t.TempDir()
	workload := filepath.Join(dir, "workload.txt")
	content := `# mixed workload: named shapes and explicit text
3-clique
E(x,y), E(y,z), E(x,z)
4-path

# repeated on purpose: must report builds=0
3-clique
not-a-query
`
	if err := os.WriteFile(workload, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-queries", workload, "-workers", "1"}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1 (one bad line)\n%s%s", got, &stdout, &stderr)
	}
	got := normalize(stdout.Bytes())

	golden := filepath.Join("testdata", "batch.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/cltj -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("batch output drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCLIUnknownAlgo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-algo", "quantum"}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	if want := `unknown algorithm "quantum"`; !bytes.Contains(stderr.Bytes(), []byte(want)) {
		t.Fatalf("stderr %q missing %q", &stderr, want)
	}
}

func TestCLIBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-no-such-flag"}, &stdout, &stderr); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
}

func TestCLITimeout(t *testing.T) {
	// A 1ns budget is expired before the join starts: the deadline
	// check trips upfront, cltj exits nonzero and names the cause.
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-query", "4-cycle", "-workers", "1", "-timeout", "1ns"}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1\n%s%s", got, &stdout, &stderr)
	}
	if want := "context deadline exceeded"; !bytes.Contains(stderr.Bytes(), []byte(want)) {
		t.Fatalf("stderr %q missing %q", &stderr, want)
	}

	// lftj honors it too.
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-algo", "lftj", "-workers", "1", "-timeout", "1ns"}, &stdout, &stderr); got != 1 {
		t.Fatalf("lftj exit = %d, want 1\n%s%s", got, &stdout, &stderr)
	}

	// Engines without cancellation hooks reject the flag instead of
	// silently ignoring it.
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-algo", "ytd", "-timeout", "1s"}, &stdout, &stderr); got != 1 {
		t.Fatalf("ytd exit = %d, want 1", got)
	}
	if want := "-timeout requires"; !bytes.Contains(stderr.Bytes(), []byte(want)) {
		t.Fatalf("stderr %q missing %q", &stderr, want)
	}

	// So do the resident-engine modes, whose budget knob is per-request.
	dir := t.TempDir()
	workload := filepath.Join(dir, "w.txt")
	if err := os.WriteFile(workload, []byte("3-clique\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-queries", workload, "-timeout", "1s"}, &stdout, &stderr); got != 1 {
		t.Fatalf("batch -timeout exit = %d, want 1", got)
	}
	if want := "timeout_ms per request"; !bytes.Contains(stderr.Bytes(), []byte(want)) {
		t.Fatalf("stderr %q missing %q", &stderr, want)
	}

	// A generous budget changes nothing: the run completes normally.
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-query", "3-clique", "-workers", "1", "-timeout", "1m"}, &stdout, &stderr); got != 0 {
		t.Fatalf("generous timeout exit = %d\n%s%s", got, &stdout, &stderr)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("count:")) {
		t.Fatalf("stdout missing count: %s", &stdout)
	}
}

func TestBatchReusesTries(t *testing.T) {
	dir := t.TempDir()
	workload := filepath.Join(dir, "w.txt")
	if err := os.WriteFile(workload, []byte("3-clique\n3-clique\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-queries", workload, "-workers", "1"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d\n%s%s", got, &stdout, &stderr)
	}
	out := stdout.String()
	first := regexp.MustCompile(`\[0\][^\n]*builds=(\d+)`).FindStringSubmatch(out)
	second := regexp.MustCompile(`\[1\][^\n]*builds=(\d+)`).FindStringSubmatch(out)
	if first == nil || second == nil {
		t.Fatalf("unexpected batch output:\n%s", out)
	}
	if first[1] == "0" {
		t.Fatalf("cold query reported builds=0:\n%s", out)
	}
	if second[1] != "0" {
		t.Fatalf("warm repeat reported builds=%s, want 0:\n%s", second[1], out)
	}
}

func TestCLIGoldenUpdates(t *testing.T) {
	dir := t.TempDir()
	deltas := filepath.Join(dir, "deltas.txt")
	content := `# grow one triangle, then retract an edge of another
+ E 61 62
+ E 62 63
+ E 61 63
apply
- E 61 63
+ E 63 61

# duplicate insert: second apply is partially redundant
+ E 61 62
`
	if err := os.WriteFile(deltas, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	runGolden(t, "updates_triangle", []string{"-updates", deltas, "-q", "E(x,y), E(y,z), E(x,z)", "-workers", "1"}, 0)
}

func TestCLIUpdatesErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"badop.txt":  "* E 1 2\n",
		"badval.txt": "+ E 1 x\n",
		"badrel.txt": "+ R 1 2\n",
		"short.txt":  "+ E\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		if got := run([]string{"-updates", path}, &stdout, &stderr); got != 1 {
			t.Errorf("%s: exit = %d, want 1 (stderr %q)", name, got, stderr.String())
		}
	}
}

// TestCLIPersistentBatch runs the same workload twice over one
// -data-dir: the first run boots cold and persists, the second boots
// warm and must answer its first query from mmap'd indices (builds=0).
func TestCLIPersistentBatch(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	workload := filepath.Join(dir, "workload.txt")
	if err := os.WriteFile(workload, []byte("3-clique\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-queries", workload, "-workers", "1", "-data-dir", dataDir}

	var cold, warm bytes.Buffer
	if got := run(args, &cold, &cold); got != 0 {
		t.Fatalf("cold run exit = %d\n%s", got, &cold)
	}
	if !bytes.Contains(cold.Bytes(), []byte("cold start")) {
		t.Fatalf("first run did not report a cold start:\n%s", &cold)
	}
	if got := run(args, &warm, &warm); got != 0 {
		t.Fatalf("warm run exit = %d\n%s", got, &warm)
	}
	if !bytes.Contains(warm.Bytes(), []byte("warm start")) {
		t.Fatalf("second run did not report a warm start:\n%s", &warm)
	}
	if !bytes.Contains(warm.Bytes(), []byte("builds=0")) {
		t.Fatalf("warm first query rebuilt its tries:\n%s", &warm)
	}
	// Both runs must agree on the count line.
	countLine := regexp.MustCompile(`count=\d+`)
	cc, wc := countLine.Find(cold.Bytes()), countLine.Find(warm.Bytes())
	if cc == nil || !bytes.Equal(cc, wc) {
		t.Fatalf("count drifted across restart: cold %q, warm %q", cc, wc)
	}
}

// TestCLIDataDirValidation: -data-dir outside the resident modes, or
// combined with offline -updates replay, is rejected up front.
func TestCLIDataDirValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"single-query": {"-data-dir", t.TempDir(), "-query", "3-clique"},
		"with-updates": {"-data-dir", t.TempDir(), "-updates", "x.txt", "-queries", "w.txt"},
	} {
		var stdout, stderr bytes.Buffer
		if got := run(args, &stdout, &stderr); got != 1 {
			t.Errorf("%s: exit = %d, want 1 (stderr %q)", name, got, stderr.String())
		}
		if !bytes.Contains(stderr.Bytes(), []byte("-data-dir")) {
			t.Errorf("%s: stderr %q does not explain the -data-dir conflict", name, stderr.String())
		}
	}
}
