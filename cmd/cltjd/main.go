// Command cltjd is the resident CLTJ query daemon: it loads a dataset
// once, indexes it lazily into a shared trie registry, and serves
// HTTP/JSON queries until stopped — the long-lived deployment shape the
// per-invocation cltj CLI cannot offer. Repeated and overlapping
// queries reuse resident indices, so steady-state latency excludes trie
// construction entirely. Relations stay mutable while the daemon runs:
// POST /update applies live insert/delete deltas, each installing a new
// relation version whose indices are derived from the resident ones by
// copy-on-write patches (full rebuilds only past the compaction
// crossover), while concurrent queries keep answering from the
// snapshot they started on.
//
// With -data-dir the daemon is persistent (format: docs/FORMAT.md): the
// first start snapshots the loaded dataset into the directory, updates
// append to per-relation write-ahead logs before they are acknowledged,
// and trie indices built for queries are written behind. A restart with
// the same -data-dir boots warm — snapshots are verified and mmap'd,
// WALs replayed, dataset flags ignored — and answers its first query in
// milliseconds with zero trie builds (observable via GET /stats).
//
// The daemon also scales out (DESIGN.md, "Distributed serving").
// With -shard i/n it serves one hash partition: the dataset is loaded
// and only the tuples whose first attribute hashes to partition i are
// kept. With -coordinator -shards host1,host2,... it serves no data
// itself but fans queries out over the listed shard daemons (in
// partition order) and merges the answers with single-engine semantics.
// In every mode the listener binds immediately and answers 503 on all
// paths — including GET /healthz — until the engine has booted (or, for
// a coordinator, until every shard is ready), so probes can tell
// "booting" from "down".
//
// Usage:
//
//	cltjd [-addr :8372] [-data graph.txt | -rel R=path ...] [-symmetric]
//	      [-data-dir DIR] [-workers K] [-stream-workers K] [-batch-size N]
//	      [-trie-budget BYTES] [-max-tuples N]
//	      [-orderer cost|greedy|adaptive] [-adapt-threshold F] [-adapt-runs K]
//	      [-compact-fraction F] [-plan-cache N] [-max-prepared N] [-drain DUR]
//	      [-shard i/n]
//	cltjd -coordinator -shards host1:8372,host2:8372 [-addr :8372]
//	      [-admit DUR] [-shard-timeout DUR] [-hedge DUR] [-drain DUR]
//
// A partition may be served by several replicas holding the same data
// slice, grouped with "|": -shards a1:8372|a2:8372,b:8372 makes
// partition 0 a two-replica group. Reads fail over between replicas
// (optionally hedged after -hedge), updates fan out to all of them, and
// a per-endpoint circuit breaker fails fast on proven-dead endpoints.
// Requests carrying "allow_partial": true may be answered from the
// surviving partitions when others are down — flagged "partial": true
// with the missing shards named, never silently wrong (see
// docs/OPERATIONS.md for the degraded-mode runbook).
//
// Endpoints (see internal/server for the wire format):
//
//	POST   /query        {"query": "E(x,y), E(y,z), E(x,z)", "mode": "count"}
//	                     ({"stmt": "s1"} executes a prepared statement;
//	                     "mode": "stream" streams NDJSON rows; "timeout_ms"
//	                     bounds one query)
//	POST   /prepare      {"query": "..."} -> {"stmt": "s1"}
//	DELETE /prepare/{id} close a prepared statement
//	POST   /update       {"relation": "E", "inserts": [[7,9]], "deletes": [[1,2]]}
//	GET    /stats        engine-lifetime counters + registry + plan cache + versions
//	GET    /healthz      readiness probe (503 while booting, 200 serving)
//
// A coordinator serves the same /query, /update, /stats and /healthz
// surface (no /prepare — prepared statements are engine-local), merged
// across its fleet: counts summed, streams merged byte-identically in
// root-key order, counters folded exactly. Shard failures answer 502
// naming the failed shard; a snapshot that moved mid-merge answers 409.
//
// Queries run under their request contexts: a disconnected client
// cancels its query, and SIGINT/SIGTERM shuts the daemon down
// gracefully — in-flight queries drain (bounded by -drain), epoch
// reclamation proceeds as usual, then the process exits.
//
// Example (two shards and a coordinator on one host):
//
//	cltjd -data graph.txt -shard 0/2 -addr :8401 &
//	cltjd -data graph.txt -shard 1/2 -addr :8402 &
//	cltjd -coordinator -shards localhost:8401,localhost:8402 -addr :8400 &
//	curl -s localhost:8400/query -d '{"query": "E(x,y), E(x,z)"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/relation"
	"repro/internal/server"
)

// relFlags collects repeated -rel name=path flags.
type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	var rels relFlags
	flag.Var(&rels, "rel", "load a relation from a whitespace-delimited file: -rel R=path (repeatable)")
	dataFlag := flag.String("data", "", "edge-list file for relation E (default: built-in skewed sample graph)")
	symFlag := flag.Bool("symmetric", false, "treat edges as undirected (add both directions)")
	workersFlag := flag.Int("workers", 0, "default per-query worker goroutines (0 = one per core)")
	streamWorkersFlag := flag.Int("stream-workers", 0, "default producers for streaming executions (\"mode\": \"stream\"): 0 or 1 = sequential, K = sharded producers with byte-identical output for every K")
	batchFlag := flag.Int("batch-size", 0, "default block size for batched execution (0 = scalar loops)")
	budgetFlag := flag.Int64("trie-budget", 0, "resident trie byte budget shared across queries (0 = unbounded)")
	maxTuples := flag.Int("max-tuples", server.DefaultMaxTuples, "default cap on tuples returned by eval responses")
	compactFlag := flag.Float64("compact-fraction", 0, "patch-vs-rebuild crossover as a fraction of the base relation size (0 = default)")
	planCacheFlag := flag.Int("plan-cache", 0, "compiled-plan cache capacity in entries (0 = default, negative = disabled)")
	ordererFlag := flag.String("orderer", "", "default planning strategy: cost (default; full cost model), greedy (stats-free pattern ranking) or adaptive (greedy + feedback-driven re-planning)")
	adaptThresholdFlag := flag.Float64("adapt-threshold", 0, "adaptive orderer: relative trie-traffic divergence from a cached plan's baseline that counts as divergent (0 = default 0.5)")
	adaptRunsFlag := flag.Int("adapt-runs", 0, "adaptive orderer: consecutive divergent executions that trigger a re-plan (0 = default 3)")
	maxPreparedFlag := flag.Int("max-prepared", 0, "prepared-statement registry cap (0 = default)")
	dataDirFlag := flag.String("data-dir", "", "persistent data directory: snapshots + write-ahead logs + trie index files; a populated directory boots warm (dataset flags are ignored) and updates become durable")
	drainFlag := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight queries on SIGINT/SIGTERM")
	shardFlag := flag.String("shard", "", "serve one hash partition of the dataset: -shard i/n keeps only the tuples whose first attribute hashes to partition i of n (cluster shard mode)")
	coordFlag := flag.Bool("coordinator", false, "serve as a scatter–gather coordinator over -shards instead of loading data")
	shardsFlag := flag.String("shards", "", "coordinator mode: comma-separated shard groups in partition order; a group is one address or |-separated replica addresses holding the same partition (a1|a2,b)")
	admitFlag := flag.Duration("admit", 2*time.Minute, "coordinator mode: how long to wait for every shard to answer its readiness probe before serving")
	shardTimeoutFlag := flag.Duration("shard-timeout", cluster.DefaultShardTimeout, "coordinator mode: per-shard request timeout for buffered operations")
	hedgeFlag := flag.Duration("hedge", 0, "coordinator mode: launch a buffered read on the next replica after this delay without an answer (0 = no hedging; only replica groups hedge)")
	flag.Parse()
	if !core.Orderer(*ordererFlag).Valid() {
		log.Fatalf("cltjd: unknown -orderer %q (want cost, greedy or adaptive)", *ordererFlag)
	}
	if *coordFlag && *shardFlag != "" {
		log.Fatalln("cltjd: -coordinator and -shard are mutually exclusive (a coordinator serves no data)")
	}

	// The listener binds before any engine boot or shard admission: a
	// warm restart replaying a long WAL — or a coordinator waiting for
	// its fleet — answers 503 ("starting") on every path, including
	// GET /healthz, instead of refusing connections. gate.Set flips the
	// daemon to serving atomically.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	gate := server.NewGate()
	srv := &http.Server{Addr: *addr, Handler: gate}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	var engine *server.Engine
	if *coordFlag {
		groups, err := parseShardGroups(*shardsFlag)
		if err != nil {
			log.Fatalln("cltjd:", err)
		}
		coord, err := cluster.NewHTTPFleet(groups,
			cluster.ClientConfig{Timeout: *shardTimeoutFlag},
			cluster.ReplicaConfig{Hedge: *hedgeFlag},
			cluster.Config{})
		if err != nil {
			log.Fatalln("cltjd:", err)
		}
		log.Printf("cltjd coordinator on %s: waiting up to %s for %d shards to become ready", *addr, *admitFlag, len(groups))
		admitCtx, cancel := context.WithTimeout(ctx, *admitFlag)
		err = coord.WaitReady(admitCtx)
		cancel()
		if err != nil {
			log.Fatalln("cltjd:", err)
		}
		gate.Set(cluster.NewHandler(coord))
		log.Printf("cltjd coordinator serving %d shards on %s (POST /query, POST /update, GET /stats, GET /healthz)", len(groups), *addr)
	} else {
		shardIdx, shardTotal, err := parseShard(*shardFlag)
		if err != nil {
			log.Fatalln("cltjd:", err)
		}
		var warm bool
		engine, warm, err = server.OpenEngine(server.Config{
			Workers:         *workersFlag,
			StreamWorkers:   *streamWorkersFlag,
			BatchSize:       *batchFlag,
			TrieBudget:      *budgetFlag,
			MaxTuples:       *maxTuples,
			CompactFraction: *compactFlag,
			PlanCache:       *planCacheFlag,
			Orderer:         *ordererFlag,
			AdaptThreshold:  *adaptThresholdFlag,
			AdaptRuns:       *adaptRunsFlag,
			MaxPrepared:     *maxPreparedFlag,
			DataDir:         *dataDirFlag,
		}, func() (*relation.DB, error) {
			db, _, err := dataset.LoadDB(rels, *dataFlag, *symFlag)
			if err != nil || shardTotal == 0 {
				return db, err
			}
			// Shard mode: every shard loads the same dataset files and
			// keeps its own hash slice. A later warm boot skips this
			// loader entirely and serves the slice it persisted.
			return cluster.Keep(db, shardIdx, shardTotal)
		})
		if err != nil {
			log.Fatalln("cltjd:", err)
		}
		if *dataDirFlag != "" {
			if warm {
				log.Printf("warm start: %s snapshots mmap'd, wal replayed, dataset files skipped", *dataDirFlag)
			} else {
				log.Printf("cold start: dataset persisted to %s (next start will be warm)", *dataDirFlag)
			}
		}
		if shardTotal != 0 {
			log.Printf("shard %d/%d: serving the first-attribute hash partition", shardIdx, shardTotal)
		}
		for _, info := range engine.Stats().Relations {
			log.Printf("relation %s: %d tuples (arity %d, version %d)", info.Name, info.Tuples, info.Arity, info.Version)
		}
		gate.Set(server.NewHandler(engine))
		log.Printf("cltjd listening on %s (POST /query, POST /prepare, POST /update, GET /stats, GET /healthz)", *addr)
	}

	// Serve until SIGINT/SIGTERM, then shut down gracefully: Shutdown
	// stops accepting connections and waits for in-flight requests, so
	// running queries drain normally — their epoch pins release as they
	// finish, exactly as in steady state (queries that outlive the drain
	// budget are cancelled through their request contexts when the
	// server closes their connections).
	select {
	case err := <-errc:
		log.Fatalln("cltjd:", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("cltjd: shutting down (draining in-flight queries for up to %s)", *drainFlag)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("cltjd: drain incomplete: %v", err)
		_ = srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalln("cltjd:", err)
	}
	if engine == nil {
		log.Printf("cltjd: bye")
		return
	}
	// Queries have drained (or been cancelled) by now, so the mmap'd
	// snapshots and WAL handles can be released safely.
	if err := engine.Close(); err != nil {
		log.Printf("cltjd: closing data dir: %v", err)
	}
	log.Printf("cltjd: bye (%d queries served)", engine.Stats().Queries)
}

// parseShardGroups parses -shards into replica groups: partitions split
// on "," and replicas within a partition on "|" (a1|a2,b means
// partition 0 is served by replicas a1 and a2, partition 1 by b alone).
func parseShardGroups(s string) ([][]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-coordinator requires -shards host1,host2,... (partition order; a|b groups replicas)")
	}
	var groups [][]string
	for _, part := range strings.Split(s, ",") {
		var group []string
		for _, a := range strings.Split(part, "|") {
			if a = strings.TrimSpace(a); a != "" {
				group = append(group, a)
			}
		}
		if len(group) == 0 {
			return nil, fmt.Errorf("bad -shards %q: empty partition group", s)
		}
		groups = append(groups, group)
	}
	return groups, nil
}

// parseShard parses -shard i/n; an empty flag means unsharded (0, 0).
func parseShard(s string) (idx, total int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &idx, &total); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/2)", s)
	}
	if total < 1 || idx < 0 || idx >= total {
		return 0, 0, fmt.Errorf("bad -shard %q: index must be in [0,%d)", s, total)
	}
	return idx, total, nil
}
