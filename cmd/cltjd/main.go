// Command cltjd is the resident CLTJ query daemon: it loads a dataset
// once, indexes it lazily into a shared trie registry, and serves
// HTTP/JSON queries until stopped — the long-lived deployment shape the
// per-invocation cltj CLI cannot offer. Repeated and overlapping
// queries reuse resident indices, so steady-state latency excludes trie
// construction entirely.
//
// Usage:
//
//	cltjd [-addr :8372] [-data graph.txt | -rel R=path ...] [-symmetric]
//	      [-workers K] [-trie-budget BYTES] [-max-tuples N]
//
// Endpoints (see internal/server for the wire format):
//
//	POST /query    {"query": "E(x,y), E(y,z), E(x,z)", "mode": "count"}
//	GET  /stats    engine-lifetime counters + registry + dataset inventory
//	GET  /healthz  liveness probe
//
// Example:
//
//	cltjd -data graph.txt &
//	curl -s localhost:8372/query -d '{"query": "E(x,y), E(y,z), E(x,z)"}'
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"

	"repro/internal/dataset"
	"repro/internal/server"
)

// relFlags collects repeated -rel name=path flags.
type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	var rels relFlags
	flag.Var(&rels, "rel", "load a relation from a whitespace-delimited file: -rel R=path (repeatable)")
	dataFlag := flag.String("data", "", "edge-list file for relation E (default: built-in skewed sample graph)")
	symFlag := flag.Bool("symmetric", false, "treat edges as undirected (add both directions)")
	workersFlag := flag.Int("workers", 0, "default per-query worker goroutines (0 = one per core)")
	budgetFlag := flag.Int64("trie-budget", 0, "resident trie byte budget shared across queries (0 = unbounded)")
	maxTuples := flag.Int("max-tuples", server.DefaultMaxTuples, "default cap on tuples returned by eval responses")
	flag.Parse()

	db, _, err := dataset.LoadDB(rels, *dataFlag, *symFlag)
	if err != nil {
		log.Fatalln("cltjd:", err)
	}

	engine := server.NewEngine(db, server.Config{
		Workers:    *workersFlag,
		TrieBudget: *budgetFlag,
		MaxTuples:  *maxTuples,
	})
	for _, info := range engine.Stats().Relations {
		log.Printf("relation %s: %d tuples (arity %d)", info.Name, info.Tuples, info.Arity)
	}
	log.Printf("cltjd listening on %s (POST /query, GET /stats, GET /healthz)", *addr)
	log.Fatalln("cltjd:", http.ListenAndServe(*addr, server.NewHandler(engine)))
}
