#!/usr/bin/env bash
# Cluster smoke test: boot two shard daemons (each holding one hash
# partition of the built-in sample graph), a coordinator over them, and
# a single unsharded daemon as the oracle. Verify the scatter–gather
# tier end to end on real sockets:
#   (a) merged counts and aggregates equal the single engine's,
#   (b) the merged NDJSON stream is byte-identical to the single
#       engine's (same header, rows in root-key order, same trailer),
#   (c) the merged /stats view parses and sees both shards,
#   (d) killing a shard mid-fleet turns queries into a typed 502 naming
#       the dead shard, and /healthz into 503.
# Run by CI on every push; usable locally:
#
#   ./scripts/cluster_smoke.sh
set -euo pipefail

S0=127.0.0.1:8391
S1=127.0.0.1:8392
COORD=127.0.0.1:8393
SINGLE=127.0.0.1:8394
# Root-shardable workloads: every atom leads with x, so results
# decompose disjointly by hash(x) and the coordinator accepts them.
QUERY='E(x,y), E(x,z)'
# The coordinator pins the data-independent greedy orderer for
# deterministic merge order; the single-engine oracle must use it too.
COUNT_BODY=$(printf '{"query": "%s", "mode": "count", "orderer": "greedy"}' "$QUERY")
STREAM_BODY=$(printf '{"query": "%s", "mode": "stream", "orderer": "greedy"}' "$QUERY")

go build -o /tmp/cltjd-cluster ./cmd/cltjd

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon on $1 did not come up" >&2
  return 1
}

/tmp/cltjd-cluster -addr "$S0" -shard 0/2 &
PIDS+=($!)
/tmp/cltjd-cluster -addr "$S1" -shard 1/2 &
S1_PID=$!
PIDS+=($S1_PID)
/tmp/cltjd-cluster -addr "$SINGLE" &
PIDS+=($!)
wait_up "$S0"
wait_up "$S1"
wait_up "$SINGLE"

# The coordinator gates its own admission on the shards' readiness.
/tmp/cltjd-cluster -addr "$COORD" -coordinator -shards "$S0,$S1" &
PIDS+=($!)
wait_up "$COORD"

# --- (a) byte-identical buffered answers ---
curl -sf "http://$COORD/query" -d "$COUNT_BODY" >/tmp/cluster-count-coord.json
curl -sf "http://$SINGLE/query" -d "$COUNT_BODY" >/tmp/cluster-count-single.json
CCOUNT=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["count"])' /tmp/cluster-count-coord.json)
SCOUNT=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["count"])' /tmp/cluster-count-single.json)
if [ "$CCOUNT" != "$SCOUNT" ]; then
  echo "FAIL: merged count $CCOUNT != single-engine count $SCOUNT" >&2
  exit 1
fi

# --- (b) byte-identical NDJSON streams ---
curl -sf "http://$COORD/query" -d "$STREAM_BODY" >/tmp/cluster-stream-coord.ndjson
curl -sf "http://$SINGLE/query" -d "$STREAM_BODY" >/tmp/cluster-stream-single.ndjson
if ! diff -q /tmp/cluster-stream-coord.ndjson /tmp/cluster-stream-single.ndjson >/dev/null; then
  echo "FAIL: merged NDJSON stream diverges from the single engine:" >&2
  diff /tmp/cluster-stream-coord.ndjson /tmp/cluster-stream-single.ndjson | head -10 >&2
  exit 1
fi
ROWS=$(grep -c '"row"' /tmp/cluster-stream-coord.ndjson || true)

# --- (c) merged stats see the whole fleet ---
SHARDS=$(curl -sf "http://$COORD/stats" | python3 -c 'import json,sys; st=json.load(sys.stdin); print(st["shards"], len(st["per_shard"]))')
if [ "$SHARDS" != "2 2" ]; then
  echo "FAIL: merged /stats reports '$SHARDS', want '2 2'" >&2
  exit 1
fi

# --- (d) shard failure: typed 502 naming the dead shard ---
kill -TERM "$S1_PID" 2>/dev/null || true
wait "$S1_PID" 2>/dev/null || true
FAIL_STATUS=$(curl -s -o /tmp/cluster-502.json -w '%{http_code}' "http://$COORD/query" -d "$COUNT_BODY")
if [ "$FAIL_STATUS" != "502" ]; then
  echo "FAIL: dead shard answered $FAIL_STATUS, want 502 ($(cat /tmp/cluster-502.json))" >&2
  exit 1
fi
if ! grep -q "$S1" /tmp/cluster-502.json; then
  echo "FAIL: 502 body does not name the dead shard $S1: $(cat /tmp/cluster-502.json)" >&2
  exit 1
fi
HEALTH_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$COORD/healthz")
if [ "$HEALTH_STATUS" != "503" ]; then
  echo "FAIL: coordinator /healthz with a dead shard answered $HEALTH_STATUS, want 503" >&2
  exit 1
fi

echo "PASS: scatter–gather over 2 shards: count=$CCOUNT rows=$ROWS byte-identical; dead shard -> typed 502 naming $S1"
