#!/usr/bin/env bash
# Warm-restart smoke test: boot the daemon cold over a data directory,
# apply an update, query, restart over the same directory, and verify
# the warm daemon (a) preserved the update and (b) answered its first
# query with zero trie builds — the indices came back from disk, not
# reconstruction. Run by CI on every push; usable locally:
#
#   ./scripts/warm_restart_smoke.sh [datadir]
set -euo pipefail

DATADIR=${1:-$(mktemp -d)}
ADDR=127.0.0.1:8379
BASE="http://$ADDR"
QUERY='{"query": "E(x,y), E(y,z), E(z,x)"}'

go build -o /tmp/cltjd-smoke ./cmd/cltjd

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon did not come up" >&2
  return 1
}

stop_daemon() {
  kill -TERM "$1" 2>/dev/null || true
  wait "$1" 2>/dev/null || true
}

# --- cold boot: persist the built-in sample dataset, update, query ---
/tmp/cltjd-smoke -addr "$ADDR" -data-dir "$DATADIR" &
PID=$!
trap 'stop_daemon $PID' EXIT
wait_up

curl -sf "$BASE/update" -d '{"relation": "E", "inserts": [[7001, 7002]]}' >/dev/null
COLD_COUNT=$(curl -sf "$BASE/query" -d "$QUERY" | python3 -c 'import json,sys; print(json.load(sys.stdin)["count"])')
stop_daemon $PID

# --- warm boot: same directory, no dataset flags ---
/tmp/cltjd-smoke -addr "$ADDR" -data-dir "$DATADIR" &
PID=$!
wait_up

FIRST=$(curl -sf "$BASE/query" -d "$QUERY")
WARM_COUNT=$(printf '%s' "$FIRST" | python3 -c 'import json,sys; print(json.load(sys.stdin)["count"])')
BUILDS=$(printf '%s' "$FIRST" | python3 -c 'import json,sys; print(json.load(sys.stdin)["stats"]["counters"]["TrieBuilds"])')
STATS=$(curl -sf "$BASE/stats")
LIFETIME_BUILDS=$(printf '%s' "$STATS" | python3 -c 'import json,sys; print(json.load(sys.stdin)["lifetime"]["TrieBuilds"])')
WAL_REPLAYED=$(printf '%s' "$STATS" | python3 -c 'import json,sys; print(json.load(sys.stdin)["persistence"]["wal_replayed"])')
stop_daemon $PID
trap - EXIT

echo "cold count=$COLD_COUNT warm count=$WARM_COUNT first-query builds=$BUILDS lifetime builds=$LIFETIME_BUILDS wal replayed=$WAL_REPLAYED"

if [ "$COLD_COUNT" != "$WARM_COUNT" ]; then
  echo "FAIL: warm count $WARM_COUNT != cold count $COLD_COUNT (update lost across restart)" >&2
  exit 1
fi
if [ "$BUILDS" != "0" ] || [ "$LIFETIME_BUILDS" != "0" ]; then
  echo "FAIL: warm daemon built tries (first query $BUILDS, lifetime $LIFETIME_BUILDS); expected mmap opens only" >&2
  exit 1
fi
if [ "$WAL_REPLAYED" = "0" ]; then
  echo "FAIL: warm boot replayed no WAL records; the update should be in the log" >&2
  exit 1
fi
echo "PASS: warm restart served the updated dataset with zero trie builds"
