#!/usr/bin/env bash
# check_md_links.sh — verify that every relative markdown link resolves.
#
# Scans the repository's *.md files (top level, docs/, and any tracked
# markdown elsewhere) for inline links [text](target) and checks that
# each relative target exists on disk, resolved against the linking
# file's directory. External schemes (http/https/mailto), pure in-page
# anchors (#...), and targets that resolve outside the repository
# (GitHub site-relative idioms like ../../actions/... badge links) are
# skipped; a target's own #fragment is stripped before the existence
# check. Exits non-zero listing every broken link.
#
# Usage: scripts/check_md_links.sh [root]   (default: repo root)

set -euo pipefail

root=${1:-$(cd "$(dirname "$0")/.." && pwd)}
cd "$root"

if command -v git >/dev/null && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    mapfile -t files < <(git ls-files '*.md')
else
    mapfile -t files < <(find . -name '*.md' -not -path './.git/*' | sed 's|^\./||')
fi

fail=0
for f in "${files[@]}"; do
    dir=$(dirname "$f")
    # Inline links only: [text](target). Reference-style links are not
    # used in this repository; grep -o keeps one match per line each.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        # Site-relative links escape the repo root; they address the
        # forge's website, not the tree.
        abs=$(realpath -m "$dir/$path")
        case "$abs" in
        "$root"/* | "$root") ;;
        *) continue ;;
        esac
        if [ ! -e "$dir/$path" ]; then
            echo "::error file=$f::broken link: ($target) -> $dir/$path does not exist"
            fail=1
        fi
    done < <(grep -o '\[[^][]*\]([^()[:space:]]*)' "$f" 2>/dev/null | sed 's/^.*](\([^()]*\))$/\1/')
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "all relative markdown links resolve (${#files[@]} files checked)"
