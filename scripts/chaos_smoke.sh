#!/usr/bin/env bash
# Chaos smoke test: boot a replicated two-partition fleet (partition 0
# served by two replicas, partition 1 by one daemon), kill real daemons
# mid-workload, and verify the degraded-mode contract end to end on
# real sockets:
#   (a) healthy fleet: answers byte-identical to the single-engine
#       oracle, and allow_partial requests are NOT marked partial,
#   (b) partition 1 dies: strict queries answer a typed 502 naming the
#       dead shard and /healthz drops to 503, while allow_partial
#       queries answer 200 with "partial": true naming it in
#       "missing_shards" and a count exact over the surviving
#       partition,
#   (c) the dead daemon restarts: answers return to byte-identical,
#   (d) one replica of partition 0 dies: reads fail over to its twin
#       and full answers keep flowing, with the breaker states visible
#       in /stats.
# Run by CI on every push; usable locally:
#
#   ./scripts/chaos_smoke.sh
set -euo pipefail

S0A=127.0.0.1:8395
S0B=127.0.0.1:8396
S1=127.0.0.1:8397
COORD=127.0.0.1:8398
SINGLE=127.0.0.1:8399
QUERY='E(x,y), E(x,z)'
COUNT_BODY=$(printf '{"query": "%s", "mode": "count", "orderer": "greedy"}' "$QUERY")
PARTIAL_BODY=$(printf '{"query": "%s", "mode": "count", "orderer": "greedy", "allow_partial": true}' "$QUERY")
STREAM_BODY=$(printf '{"query": "%s", "mode": "stream", "orderer": "greedy"}' "$QUERY")

go build -o /tmp/cltjd-chaos ./cmd/cltjd

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon on $1 did not come up" >&2
  return 1
}

json_field() { # file pythonexpr
  python3 -c 'import json,sys; st=json.load(open(sys.argv[1])); print(eval(sys.argv[2]))' "$1" "$2"
}

/tmp/cltjd-chaos -addr "$S0A" -shard 0/2 &
S0A_PID=$!
PIDS+=($S0A_PID)
/tmp/cltjd-chaos -addr "$S0B" -shard 0/2 &
PIDS+=($!)
/tmp/cltjd-chaos -addr "$S1" -shard 1/2 &
S1_PID=$!
PIDS+=($S1_PID)
/tmp/cltjd-chaos -addr "$SINGLE" &
PIDS+=($!)
wait_up "$S0A"; wait_up "$S0B"; wait_up "$S1"; wait_up "$SINGLE"

# Partition 0 is a replica group; breaker cooldowns are default.
/tmp/cltjd-chaos -addr "$COORD" -coordinator -shards "$S0A|$S0B,$S1" -hedge 100ms &
PIDS+=($!)
wait_up "$COORD"

# --- (a) healthy fleet: exact, and allow_partial is not partial ---
curl -sf "http://$SINGLE/query" -d "$COUNT_BODY" >/tmp/chaos-single.json
SCOUNT=$(json_field /tmp/chaos-single.json 'st["count"]')
curl -sf "http://$COORD/query" -d "$PARTIAL_BODY" >/tmp/chaos-healthy.json
HCOUNT=$(json_field /tmp/chaos-healthy.json 'st["count"]')
HPARTIAL=$(json_field /tmp/chaos-healthy.json 'st.get("partial", False)')
if [ "$HCOUNT" != "$SCOUNT" ] || [ "$HPARTIAL" != "False" ]; then
  echo "FAIL: healthy fleet count=$HCOUNT partial=$HPARTIAL, want $SCOUNT / False" >&2
  exit 1
fi

# The surviving partition's own exact count — what a partial answer
# missing partition 1 must report.
curl -sf "http://$S0A/query" -d "$COUNT_BODY" >/tmp/chaos-s0.json
S0COUNT=$(json_field /tmp/chaos-s0.json 'st["count"]')

# --- (b) kill partition 1: typed 502 strict, flagged 200 partial ---
kill -TERM "$S1_PID" 2>/dev/null || true
wait "$S1_PID" 2>/dev/null || true

STRICT_STATUS=$(curl -s -o /tmp/chaos-502.json -w '%{http_code}' "http://$COORD/query" -d "$COUNT_BODY")
if [ "$STRICT_STATUS" != "502" ] || ! grep -q "$S1" /tmp/chaos-502.json; then
  echo "FAIL: strict query with dead partition answered $STRICT_STATUS ($(cat /tmp/chaos-502.json)), want 502 naming $S1" >&2
  exit 1
fi
PARTIAL_STATUS=$(curl -s -o /tmp/chaos-partial.json -w '%{http_code}' "http://$COORD/query" -d "$PARTIAL_BODY")
if [ "$PARTIAL_STATUS" != "200" ]; then
  echo "FAIL: allow_partial with dead partition answered $PARTIAL_STATUS ($(cat /tmp/chaos-partial.json))" >&2
  exit 1
fi
PCOUNT=$(json_field /tmp/chaos-partial.json 'st["count"]')
PPARTIAL=$(json_field /tmp/chaos-partial.json 'st.get("partial", False)')
PMISSING=$(json_field /tmp/chaos-partial.json 'st.get("missing_shards", [])[0]')
if [ "$PPARTIAL" != "True" ] || [ "$PMISSING" != "$S1" ] || [ "$PCOUNT" != "$S0COUNT" ]; then
  echo "FAIL: partial answer count=$PCOUNT partial=$PPARTIAL missing=$PMISSING, want $S0COUNT / True / $S1" >&2
  exit 1
fi
HEALTH_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$COORD/healthz")
if [ "$HEALTH_STATUS" != "503" ]; then
  echo "FAIL: /healthz with a dead partition answered $HEALTH_STATUS, want 503" >&2
  exit 1
fi

# --- (c) restart partition 1: recovery to byte-identical answers ---
/tmp/cltjd-chaos -addr "$S1" -shard 1/2 &
PIDS+=($!)
wait_up "$S1"
for _ in $(seq 1 100); do
  RECOVER_STATUS=$(curl -s -o /tmp/chaos-recover.json -w '%{http_code}' "http://$COORD/query" -d "$COUNT_BODY")
  [ "$RECOVER_STATUS" = "200" ] && break
  sleep 0.1
done
RCOUNT=$(json_field /tmp/chaos-recover.json 'st["count"]')
if [ "$RECOVER_STATUS" != "200" ] || [ "$RCOUNT" != "$SCOUNT" ]; then
  echo "FAIL: after restart, count query answered $RECOVER_STATUS count=$RCOUNT, want 200 count=$SCOUNT" >&2
  exit 1
fi
curl -sf "http://$COORD/query" -d "$STREAM_BODY" >/tmp/chaos-stream-coord.ndjson
curl -sf "http://$SINGLE/query" -d "$STREAM_BODY" >/tmp/chaos-stream-single.ndjson
if ! diff -q /tmp/chaos-stream-coord.ndjson /tmp/chaos-stream-single.ndjson >/dev/null; then
  echo "FAIL: recovered NDJSON stream diverges from the single engine" >&2
  diff /tmp/chaos-stream-coord.ndjson /tmp/chaos-stream-single.ndjson | head -10 >&2
  exit 1
fi

# --- (d) kill one replica of partition 0: failover keeps full answers ---
kill -TERM "$S0A_PID" 2>/dev/null || true
wait "$S0A_PID" 2>/dev/null || true
for i in 1 2 3; do
  FOVER_STATUS=$(curl -s -o /tmp/chaos-failover.json -w '%{http_code}' "http://$COORD/query" -d "$COUNT_BODY")
  FCOUNT=$(json_field /tmp/chaos-failover.json 'st.get("count", -1)')
  if [ "$FOVER_STATUS" != "200" ] || [ "$FCOUNT" != "$SCOUNT" ]; then
    echo "FAIL: failover query $i answered $FOVER_STATUS count=$FCOUNT, want 200 count=$SCOUNT" >&2
    exit 1
  fi
done
FHEALTH=$(curl -s -o /dev/null -w '%{http_code}' "http://$COORD/healthz")
if [ "$FHEALTH" != "200" ]; then
  echo "FAIL: /healthz with one dead replica answered $FHEALTH, want 200 (its twin serves)" >&2
  exit 1
fi
BREAKERS=$(curl -sf "http://$COORD/stats" | python3 -c 'import json,sys; st=json.load(sys.stdin); print(len(st.get("breakers", [])), st["partial_served"])')
read -r NBREAKERS NPARTIAL <<<"$BREAKERS"
if [ "$NBREAKERS" -lt 3 ] || [ "$NPARTIAL" -lt 1 ]; then
  echo "FAIL: /stats breakers=$NBREAKERS partial_served=$NPARTIAL, want >=3 / >=1" >&2
  exit 1
fi

echo "PASS: chaos smoke: partial=$PCOUNT/$SCOUNT naming $S1, recovery byte-identical, replica failover serves $FCOUNT, $NBREAKERS breakers tracked"
