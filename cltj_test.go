package cltj

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
)

func facadeDB() *DB {
	return dataset.ErdosRenyi(25, 0.15, 44).DB(false)
}

func TestFacadeCountsAgree(t *testing.T) {
	db := facadeDB()
	for _, q := range []*Query{
		queries.Path(4),
		queries.Cycle(4),
		queries.Lollipop(3, 1),
	} {
		want, err := naive.Count(q, db)
		if err != nil {
			t.Fatal(err)
		}
		clftj, err := Count(q, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lftj, err := CountLFTJ(q, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		ytd, err := CountYTD(q, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := CountPairwise(q, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string]int64{"CLFTJ": clftj, "LFTJ": lftj, "YTD": ytd, "pairwise": pw} {
			if got != want {
				t.Errorf("%s: %s = %d, want %d", q, name, got, want)
			}
		}
	}
}

func TestFacadeEval(t *testing.T) {
	db := facadeDB()
	q := queries.Path(3)
	want, err := naive.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	order, err := Eval(q, db, Options{}, func(mu []int64) bool {
		got = append(got, append([]int64(nil), mu...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(q.Vars()) {
		t.Fatalf("order = %v", order)
	}
	// Reorder to q.Vars() and compare as sets.
	pos := make(map[string]int)
	for d, v := range order {
		pos[v] = d
	}
	for i, tup := range got {
		fixed := make([]int64, len(tup))
		for j, v := range q.Vars() {
			fixed[j] = tup[pos[v]]
		}
		got[i] = fixed
	}
	sort.Slice(got, func(i, j int) bool { return relation.CompareTuples(got[i], got[j]) < 0 })
	if len(got) != len(want) {
		t.Fatalf("eval produced %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if relation.CompareTuples(got[i], want[i]) != 0 {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFacadePrepare(t *testing.T) {
	db := facadeDB()
	q := queries.Cycle(4)
	want, err := naive.Count(q, db)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := Prepare(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Order()) != len(q.Vars()) || stmt.Plan() == nil {
		t.Fatalf("stmt order %v / plan %v", stmt.Order(), stmt.Plan())
	}

	// Repeated executions of the one compiled plan.
	for i := 0; i < 3; i++ {
		got, err := stmt.Count(context.Background())
		if err != nil || got != want {
			t.Fatalf("run %d: Count = %d, %v; want %d", i, got, err, want)
		}
	}

	// Rows streams the same result set, one fresh slice per row.
	var rows int64
	for row, err := range stmt.Rows(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != len(stmt.Order()) {
			t.Fatalf("row %v misaligned with order %v", row, stmt.Order())
		}
		rows++
	}
	if rows != want {
		t.Fatalf("Rows yielded %d tuples, want %d", rows, want)
	}

	// Breaking out stops the scan cleanly.
	seen := 0
	for _, err := range stmt.Rows(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if seen++; seen == 2 {
			break
		}
	}

	// A cancelled context surfaces as the final error pair.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ctxErr error
	for _, err := range stmt.Rows(ctx) {
		ctxErr = err
	}
	if !errors.Is(ctxErr, context.Canceled) {
		t.Fatalf("cancelled Rows err = %v", ctxErr)
	}
	if _, err := stmt.Count(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Count err = %v", err)
	}

	if _, err := Prepare(q, NewDB(), Options{}); err == nil {
		t.Fatal("Prepare against an empty DB must fail")
	}
}

func TestFacadeExplicitTD(t *testing.T) {
	db := facadeDB()
	q := queries.Path(4)
	tds := EnumerateTDs(q)
	if len(tds) == 0 {
		t.Fatal("no TDs enumerated")
	}
	want, _ := naive.Count(q, db)
	for _, tree := range tds {
		got, err := Count(q, db, Options{TD: tree})
		if err != nil {
			t.Fatalf("explicit TD: %v\n%s", err, tree)
		}
		if got != want {
			t.Errorf("explicit TD count = %d, want %d\n%s", got, want, tree)
		}
	}
}

func TestFacadeBadOrderRejected(t *testing.T) {
	db := facadeDB()
	q := queries.Path(4)
	tds := EnumerateTDs(q)
	var multi *TD
	for _, tree := range tds {
		if tree.N() > 1 {
			multi = tree
			break
		}
	}
	if multi == nil {
		t.Skip("no multi-bag TD for 4-path")
	}
	// Reversed natural order is not strongly compatible with any
	// multi-bag TD rooted at x1's bag.
	rev := []string{"x4", "x3", "x2", "x1"}
	if _, err := NewPlan(q, db, Options{TD: multi, Order: rev}); err == nil {
		// Some TDs may actually be compatible with the reversed order;
		// only fail when the TD's own derived order disagrees and
		// verification passed anyway.
		qvars := q.Vars()
		orderIdx := make([]int, len(rev))
		for d, name := range rev {
			for i, v := range qvars {
				if v == name {
					orderIdx[d] = i
				}
			}
		}
		if !multi.StronglyCompatible(orderIdx) {
			t.Error("incompatible order accepted")
		}
	}
}

func TestFacadeMustRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRelation did not panic on bad input")
		}
	}()
	MustRelation("R", 2, [][]int64{{1}})
}

func TestFacadeConstructors(t *testing.T) {
	r, err := NewRelation("R", 2, [][]int64{{1, 2}})
	if err != nil || r.Len() != 1 {
		t.Fatal("NewRelation failed")
	}
	q := NewQuery(NewAtom("R", "x", "y"))
	if q.String() != "R(x,y)" {
		t.Fatalf("query = %s", q)
	}
	if !V("x").IsVar() || C(1).IsVar() {
		t.Fatal("term constructors wrong")
	}
	db := NewDB(r)
	if _, err := db.Get("R"); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeWorkers checks the parallel knob end to end: every worker
// setting must produce the sequential count, for both CLFTJ and LFTJ.
func TestFacadeWorkers(t *testing.T) {
	db := facadeDB()
	for _, q := range []*Query{
		queries.Cycle(5),
		queries.Clique(4),
	} {
		want, err := Count(q, db, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 4} {
			got, err := Count(q, db, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s: Count(Workers: %d) = %d, want %d", q, workers, got, want)
			}
			var c Counters
			lftj, err := CountLFTJParallel(q, db, workers, &c)
			if err != nil {
				t.Fatal(err)
			}
			if lftj != want {
				t.Errorf("%s: CountLFTJParallel(%d) = %d, want %d", q, workers, lftj, want)
			}
		}
	}
}

// TestFacadeSharedTries drives Count through a shared registry: counts
// must match private-trie runs, and a warm registry must serve repeated
// queries without a single trie build.
func TestFacadeSharedTries(t *testing.T) {
	db := facadeDB()
	reg := NewTrieRegistry(0)
	for _, q := range []*Query{queries.Cycle(4), queries.Path(4), queries.Cycle(4)} {
		want, err := Count(q, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var c Counters
		got, err := Count(q, db, Options{Tries: reg, Counters: &c})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: shared-trie count %d, want %d", q, got, want)
		}
	}
	var c Counters
	if _, err := Count(queries.Cycle(4), db, Options{Tries: reg, Counters: &c}); err != nil {
		t.Fatal(err)
	}
	if c.TrieBuilds != 0 {
		t.Errorf("warm registry run built %d tries, want 0", c.TrieBuilds)
	}
	if s := reg.Stats(); s.Hits == 0 || s.Builds == 0 {
		t.Errorf("registry stats %+v, want both hits and builds", s)
	}
}

// TestFacadeEngine exercises the resident-service facade end to end.
func TestFacadeEngine(t *testing.T) {
	db := facadeDB()
	q := queries.Cycle(4)
	want, err := Count(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, EngineConfig{Workers: 2})
	resp, err := e.Do(EngineRequest{Query: q.String()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != want {
		t.Errorf("engine count %d, want %d", resp.Count, want)
	}
	if s := e.Stats(); s.Queries != 1 {
		t.Errorf("engine queries = %d, want 1", s.Queries)
	}
}
