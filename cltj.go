// Package cltj is a Go implementation of "Flexible Caching in Trie Joins"
// (Kalinsky, Etsion, Kimelfeld; EDBT 2017): CLFTJ, the Leapfrog Trie Join
// extended with optional, bounded, adhesion-keyed caches derived from a
// tree decomposition that is strongly compatible with the variable order.
//
// The facade covers the common workflows:
//
//	db := cltj.NewDB(cltj.MustRelation("E", 2, edges))
//	q, err := cltj.ParseQuery("E(x,y), E(y,z), E(x,z)")  // or build atoms
//	n, err := cltj.Count(q, db, cltj.Options{})          // CLFTJ, auto TD, all cores
//	n, err = cltj.Count(q, db, cltj.Options{Workers: 1}) // force sequential
//	n, err = cltj.CountLFTJ(q, db, nil)                  // vanilla LFTJ
//	n, err = cltj.CountYTD(q, db, nil)                   // Yannakakis+TD
//
//	stmt, err := cltj.Prepare(q, db, cltj.Options{})     // compile once ...
//	n, err = stmt.Count(ctx)                             // ... run many, cancellable
//	for row, err := range stmt.Rows(ctx) { ... }         // ... or stream the tuples
//
// Lower-level control (explicit TDs, orders, policies, counters) lives in
// the internal packages re-exported through the aliases below; see
// DESIGN.md for the system inventory.
package cltj

import (
	"context"
	"iter"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/factorized"
	"repro/internal/genericjoin"
	"repro/internal/leapfrog"
	"repro/internal/pairwise"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/td"
	"repro/internal/trie"
	"repro/internal/yannakakis"
)

// Re-exported building blocks. The aliases keep one import path for
// applications while the implementation stays in focused packages.
type (
	// Query is a full conjunctive query (no projection).
	Query = cq.Query
	// Atom is one subgoal R(t1,...,tk).
	Atom = cq.Atom
	// Term is an atom argument: variable or constant.
	Term = cq.Term
	// Relation is a sorted, duplicate-free integer relation.
	Relation = relation.Relation
	// DB is a named collection of relations.
	DB = relation.DB
	// TD is an ordered tree decomposition.
	TD = td.TD
	// Plan is a compiled CLFTJ plan (query + TD + order + tries).
	Plan = core.Plan
	// Policy configures CLFTJ's cache behaviour.
	Policy = core.Policy
	// Counters accumulates memory-access and cache statistics.
	Counters = stats.Counters
	// FactorizedSet is a factorized (d-)representation of a result set,
	// as produced by Plan.EvalFactorized.
	FactorizedSet = factorized.Set
	// Engine is a resident query service: one database loaded once, trie
	// indices shared across any number of concurrent queries through a
	// registry, per-query cache policies and engine-lifetime statistics.
	Engine = server.Engine
	// EngineConfig sizes a new Engine (default workers, trie byte
	// budget, reuse toggle).
	EngineConfig = server.Config
	// EngineRequest is one query submission to an Engine.
	EngineRequest = server.Request
	// EngineResponse is an Engine's answer to one request.
	EngineResponse = server.Response
	// EngineUpdate is one mutation submission to an Engine: a batch of
	// inserts and deletes applied atomically to a single relation,
	// installing a new version (Engine.Update).
	EngineUpdate = server.UpdateRequest
	// EngineUpdateResult describes the version an update installed.
	EngineUpdateResult = server.UpdateResult
	// EngineStats is the engine-lifetime view served by GET /stats.
	EngineStats = server.EngineStats
	// EngineStmt is a prepared statement over an Engine: one query
	// parsed and compiled once through the engine's plan cache, with
	// ctx-aware Do/CountCtx/Rows executions (Engine.Prepare). The
	// engine variant follows live updates — execution always runs
	// against the current snapshot, recompiling only when the touched
	// relations changed version. For a static database without an
	// Engine, see Prepare.
	EngineStmt = server.Stmt
	// PlanCacheStats reports the engine plan cache's hit/miss/eviction
	// history and residency (EngineStats.Plans).
	PlanCacheStats = server.PlanCacheStats
	// RelationStore is a mutable, versioned relation: immutable
	// snapshots advanced by ApplyDelta, with base/delta lineage that
	// lets trie registries patch indices instead of rebuilding them.
	RelationStore = relation.Store
	// RelationVersion is one immutable snapshot of a RelationStore.
	RelationVersion = relation.Version
	// TrieRegistry is a shared, byte-budgeted, LRU-evicting cache of
	// immutable tries keyed by (relation, attribute order).
	TrieRegistry = trie.Registry
	// TrieSource supplies shared tries to plan compilation; a
	// *TrieRegistry implements it.
	TrieSource = leapfrog.TrieSource
)

// Semiring is a commutative semiring for Aggregate (§6 extension).
type Semiring[T any] = core.Semiring[T]

// VarWeight assigns a semiring weight to a (depth, value) pair.
type VarWeight[T any] = core.VarWeight[T]

// Aggregate computes ⊕_{µ∈q(D)} ⊗_d w(d, µ(x_d)) over the plan with
// CLFTJ's caches holding subtree aggregates — the paper's §6 extension
// to general aggregate operators. CountSemiring + UnitWeight recovers
// Count.
func Aggregate[T any](p *Plan, policy Policy, sr Semiring[T], w VarWeight[T]) T {
	return core.Aggregate(p, policy, sr, w)
}

// AggregateParallel is Aggregate sharded over policy.Workers goroutines
// (0: one per core, 1: the sequential path). Results are bit-identical
// to Aggregate whenever ⊕ is exactly associative (counting, min/max
// semirings); floating-point sums may differ by reassociation error.
func AggregateParallel[T any](p *Plan, policy Policy, sr Semiring[T], w VarWeight[T]) T {
	return core.AggregateParallel(p, policy, sr, w)
}

// CountSemiring returns the counting semiring (ℕ, +, ×).
func CountSemiring() Semiring[int64] { return core.CountSemiring() }

// SumProductSemiring returns the sum-product semiring (ℝ, +, ×).
func SumProductSemiring() Semiring[float64] { return core.SumProductSemiring() }

// TropicalSemiring returns the min-plus semiring (ℝ∪{∞}, min, +).
func TropicalSemiring() Semiring[float64] { return core.TropicalSemiring() }

// UnitWeight returns the all-One weight function for sr.
func UnitWeight[T any](sr Semiring[T]) VarWeight[T] { return core.UnitWeight(sr) }

// Eviction modes for bounded caches.
const (
	EvictFIFO = core.EvictFIFO
	EvictNone = core.EvictNone
	EvictLRU  = core.EvictLRU
)

// NewQuery builds a query from atoms.
func NewQuery(atoms ...Atom) *Query { return cq.New(atoms...) }

// ParseQuery reads a query from the conventional comma-separated atom
// syntax, e.g. "E(x,y), E(y,z), R(z, 42)".
func ParseQuery(input string) (*Query, error) { return cq.Parse(input) }

// NewAtom builds an atom whose arguments are all variables.
func NewAtom(rel string, vars ...string) Atom { return cq.NewAtom(rel, vars...) }

// V returns a variable term.
func V(name string) Term { return cq.V(name) }

// C returns a constant term.
func C(v int64) Term { return cq.C(v) }

// NewRelation builds a relation from tuples (copied, sorted, deduped).
func NewRelation(name string, arity int, tuples [][]int64) (*Relation, error) {
	return relation.New(name, arity, tuples)
}

// MustRelation is NewRelation but panics on error.
func MustRelation(name string, arity int, tuples [][]int64) *Relation {
	return relation.MustNew(name, arity, tuples)
}

// NewDB builds a database over the given relations.
func NewDB(rels ...*Relation) *DB { return relation.NewDB(rels...) }

// NewEngine wraps db in a resident query service: tries are built once
// into a shared registry (bounded by cfg.TrieBudget bytes, LRU-evicted
// under pressure) and reused by every subsequent query; Engine.Do is
// safe to call from any number of goroutines. cmd/cltjd serves an
// Engine over HTTP.
func NewEngine(db *DB, cfg EngineConfig) *Engine { return server.NewEngine(db, cfg) }

// NewTrieRegistry returns a shared trie cache bounded to budgetBytes
// resident bytes (0 = unbounded), for use via Options.Tries when
// driving plans directly instead of through an Engine.
func NewTrieRegistry(budgetBytes int64) *TrieRegistry { return trie.NewRegistry(budgetBytes) }

// NewRelationStore wraps a relation as version 0 of a mutable,
// versioned relation. Apply deltas with ApplyDelta; feed each new
// version to a TrieRegistry via Observe so queries over the new
// version reuse patched indices (an Engine does all of this per
// Update).
func NewRelationStore(base *Relation) *RelationStore { return relation.NewStore(base) }

// Options configures the automatic CLFTJ entry points.
type Options struct {
	// Policy is the cache policy (zero value: unbounded caches that
	// store every intermediate result). In parallel runs caches are
	// per worker, so Policy.Capacity bounds each worker's memory: K
	// workers may retain up to K*Capacity entries in total.
	Policy Policy
	// TD forces a specific tree decomposition; nil selects one
	// automatically per the paper's §4 heuristics.
	TD *TD
	// Order forces a variable order (must be strongly compatible with
	// the TD); nil derives one from the TD.
	Order []string
	// Counters receives memory-access accounting (may be nil).
	// Parallel runs merge per-worker accounting exactly, but the
	// totals depend on the worker count (the root-domain prescan and
	// per-worker cache misses add accesses a sequential run avoids) —
	// set Workers to 1 to reproduce the paper's sequential
	// memory-traffic numbers on any machine.
	Counters *Counters
	// Workers shards the execution over this many goroutines by
	// partitioning the first variable's domain: 0 uses one worker per
	// core, 1 forces the sequential path, K > 1 runs K workers with
	// private caches and counters. Counts are bit-identical to the
	// sequential engine at any setting. Overrides Policy.Workers when
	// non-zero.
	Workers int
	// Tries is an optional shared trie source (see NewTrieRegistry):
	// plan compilation draws indices from it instead of building
	// per-query tries, so repeated queries skip trie construction
	// entirely. nil builds private tries, as before.
	Tries TrieSource
}

// policy resolves the effective cache/execution policy of the options.
func (o Options) policy() Policy {
	pol := o.Policy
	if o.Workers != 0 {
		pol.Workers = o.Workers
	}
	return pol
}

// buildWorkersOf maps the facade's Workers knob (0: one per core) to
// the builders' convention (0/1: sequential; < 0: one per core).
func buildWorkersOf(workers int) int {
	if workers == 0 {
		return -1
	}
	return workers
}

// NewPlan compiles a CLFTJ plan per the options (automatic TD selection
// when opts.TD is nil). Options.Workers also bounds the goroutines each
// private trie build may use during compilation (0: one per core).
func NewPlan(q *Query, db *DB, opts Options) (*Plan, error) {
	if opts.TD == nil {
		return core.AutoPlan(q, db, core.AutoOptions{
			Counters:     opts.Counters,
			Tries:        opts.Tries,
			BuildWorkers: buildWorkersOf(opts.Workers),
		})
	}
	order := opts.Order
	if order == nil {
		qvars := q.Vars()
		for _, xi := range opts.TD.CompatibleOrder(len(qvars)) {
			order = append(order, qvars[xi])
		}
	}
	return core.NewPlanWith(q, db, opts.TD, order, opts.Counters, opts.Tries)
}

// Count evaluates |q(D)| with CLFTJ. With opts.Workers unset (or 0) the
// join is sharded over one worker per core; the count is bit-identical
// to a sequential run regardless of the worker count.
func Count(q *Query, db *DB, opts Options) (int64, error) {
	plan, err := NewPlan(q, db, opts)
	if err != nil {
		return 0, err
	}
	return plan.CountParallel(opts.policy()).Count, nil
}

// Eval enumerates q(D) with CLFTJ; emit receives assignments aligned
// with the plan's variable order and may return false to stop. It
// returns the order used. Options.Workers is honored exactly as in
// Count: the default (0) shards over one worker per core, which
// materializes and merges per-worker results before emitting (emitted
// slices are then fresh and may be retained); Workers: 1 forces the
// sequential path, which streams tuples as the scan finds them but
// reuses the emit slice (copy to retain). For a streaming iterator
// with cancellation, see Prepare and Stmt.Rows.
func Eval(q *Query, db *DB, opts Options, emit func(mu []int64) bool) ([]string, error) {
	plan, err := NewPlan(q, db, opts)
	if err != nil {
		return nil, err
	}
	plan.EvalParallel(opts.policy(), emit)
	return plan.Order(), nil
}

// Prepare compiles q against db once and returns a statement that can
// be executed any number of times — the paper's build-once/run-many
// plan contract with a context-aware API on top. For a live, updatable
// database use Engine.Prepare instead (an EngineStmt follows updates
// through the engine's plan cache; a Stmt is pinned to db as given).
func Prepare(q *Query, db *DB, opts Options) (*Stmt, error) {
	plan, err := NewPlan(q, db, opts)
	if err != nil {
		return nil, err
	}
	return &Stmt{plan: plan, opts: opts}, nil
}

// Stmt is a prepared query over a static database: parse, TD selection
// and plan compilation are paid once in Prepare, and each execution
// runs the compiled plan under the prepare-time options. Concurrent
// executions are safe when opts.Counters is nil (a shared counters
// sink would race; give each goroutine its own statement otherwise).
type Stmt struct {
	plan *Plan
	opts Options
}

// Plan exposes the compiled plan (for Session, EvalFactorized and the
// other lower-level entry points).
func (s *Stmt) Plan() *Plan { return s.plan }

// Order returns the plan's variable order; Rows assignments align with
// it.
func (s *Stmt) Order() []string { return s.plan.Order() }

// Count evaluates |q(D)|, sharded per the prepare-time Workers option,
// unwinding cooperatively when ctx is cancelled or times out.
func (s *Stmt) Count(ctx context.Context) (int64, error) {
	res, err := s.plan.CountParallelCtx(ctx, s.opts.policy())
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Rows streams q(D) one assignment at a time in the plan's variable
// order; each yielded slice is a fresh copy the consumer may retain.
// Rows always runs the sequential engine, so the first row arrives
// before the join finishes, breaking out of the loop stops the scan
// immediately, and cancelling ctx ends the stream with a final
// (nil, ctx.Err()) pair after the rows already yielded:
//
//	for row, err := range stmt.Rows(ctx) {
//	    if err != nil { return err }
//	    use(row)
//	}
func (s *Stmt) Rows(ctx context.Context) iter.Seq2[[]int64, error] {
	return func(yield func([]int64, error) bool) {
		stopped := false
		_, err := s.plan.EvalCtx(ctx, s.opts.policy(), func(mu []int64) bool {
			if !yield(append([]int64(nil), mu...), nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// CountLFTJ evaluates |q(D)| with vanilla LFTJ under the query's natural
// variable order. counters may be nil.
func CountLFTJ(q *Query, db *DB, counters *Counters) (int64, error) {
	inst, err := leapfrog.Build(q, db, q.Vars(), counters)
	if err != nil {
		return 0, err
	}
	return leapfrog.Count(inst), nil
}

// CountLFTJParallel evaluates |q(D)| with vanilla LFTJ sharded over the
// given number of worker goroutines (0: one per core, 1: sequential).
// counters may be nil; per-worker accounting is merged into it exactly.
func CountLFTJParallel(q *Query, db *DB, workers int, counters *Counters) (int64, error) {
	inst, err := leapfrog.BuildOptions(q, db, q.Vars(), leapfrog.BuildOpts{
		Counters: counters,
		Workers:  buildWorkersOf(workers),
	})
	if err != nil {
		return 0, err
	}
	return leapfrog.ParallelCount(inst, workers), nil
}

// CountYTD evaluates |q(D)| with Yannakakis over an automatically
// selected tree decomposition. counters may be nil.
func CountYTD(q *Query, db *DB, counters *Counters) (int64, error) {
	tree, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(len(q.Vars())))
	return yannakakis.Count(q, db, tree, counters)
}

// CountPairwise evaluates |q(D)| with the traditional pairwise hash-join
// baseline. counters may be nil.
func CountPairwise(q *Query, db *DB, counters *Counters) (int64, error) {
	res, err := pairwise.Count(q, db, counters)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// CountGenericJoin evaluates |q(D)| with the hash-based NPRR/GenericJoin
// worst-case-optimal algorithm [17,18]. counters may be nil.
func CountGenericJoin(q *Query, db *DB, counters *Counters) (int64, error) {
	return genericjoin.Count(q, db, counters)
}

// EnumerateTDs returns candidate ordered tree decompositions of q,
// biased toward small adhesions (§4).
func EnumerateTDs(q *Query) []*TD {
	return td.Enumerate(q, td.Options{})
}

// NewTD assembles an ordered tree decomposition from bags of variable
// indices (per Query.VarIndex) and parent pointers (-1 for the root).
// Validate it against a query with TD.Validate.
func NewTD(bags [][]int, parent []int) (*TD, error) {
	return td.New(bags, parent)
}
