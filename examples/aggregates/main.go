// Aggregates: the paper's §6 extension to general aggregate operators,
// here over three semirings. On a product-copurchase-style graph we
// count 4-path patterns (counting semiring), estimate a probabilistic
// pattern weight (sum-product semiring over per-node reliabilities), and
// find the cheapest witness (tropical semiring) — all through the same
// cached trie-join, with the caches storing subtree aggregates instead
// of counts.
package main

import (
	"fmt"
	"log"
	"time"

	cltj "repro"
	"repro/internal/dataset"
	"repro/internal/queries"
)

func main() {
	g := dataset.TriadicPA(400, 4, 0.5, 2024)
	db := g.DB(false)
	q := queries.Path(4)
	fmt.Printf("graph: %d nodes, %d edges; query: %s\n\n", g.N, g.NumEdges(), q)

	plan, err := cltj.NewPlan(q, db, cltj.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Counting semiring: plain CachedTJCount.
	sr := cltj.CountSemiring()
	start := time.Now()
	count := cltj.Aggregate(plan, cltj.Policy{}, sr, cltj.UnitWeight(sr))
	fmt.Printf("count semiring:        |q(D)| = %d  (%.2fms)\n",
		count, ms(start))

	// 2. Sum-product semiring: each node v "succeeds" with probability
	// 1/(1+v mod 4); the aggregate is the expected number of fully
	// successful pattern matches.
	sp := cltj.SumProductSemiring()
	prob := func(d int, v int64) float64 { return 1 / (1 + float64(v%4)) }
	start = time.Now()
	expected := cltj.Aggregate(plan, cltj.Policy{}, sp, prob)
	fmt.Printf("sum-product semiring:  expected matches = %.2f  (%.2fms)\n",
		expected, ms(start))

	// 3. Tropical semiring: node v costs v; the aggregate is the total
	// cost of the cheapest pattern occurrence.
	tr := cltj.TropicalSemiring()
	cost := func(d int, v int64) float64 { return float64(v) }
	start = time.Now()
	cheapest := cltj.Aggregate(plan, cltj.Policy{}, tr, cost)
	fmt.Printf("tropical semiring:     cheapest witness cost = %.0f  (%.2fms)\n",
		cheapest, ms(start))

	// The same computation with caching disabled shows what the caches
	// save even for non-count aggregates.
	start = time.Now()
	cltj.Aggregate(plan, cltj.Policy{Disabled: true}, sr, cltj.UnitWeight(sr))
	uncached := ms(start)
	start = time.Now()
	cltj.Aggregate(plan, cltj.Policy{}, sr, cltj.UnitWeight(sr))
	cached := ms(start)
	fmt.Printf("\ncaching speedup on the count aggregate: %.1fx (%.2fms -> %.2fms)\n",
		uncached/cached, uncached, cached)

	// Factorized materialization (§3.4): the full result as a shared
	// d-representation, far smaller than the flat tuple set.
	set := plan.EvalFactorized(cltj.Policy{})
	fmt.Printf("\nfactorized result: %d tuples represented by %d entries (%.1fx compression)\n",
		set.Count(), set.NumEntries(), float64(set.Count())/float64(set.NumEntries()))
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
