// Memorybudget: CLFTJ under bounded caches (§5.3.3, Fig. 10). The
// example runs a 6-cycle count on an IMDB-like skewed database with a
// sweep of cache capacities, demonstrating the paper's headline
// flexibility claim: CLFTJ turns whatever memory it is allowed to use
// into speedup, degrading gracefully to LFTJ at capacity zero — unlike
// traditional engines, which need room for all intermediate results.
package main

import (
	"fmt"
	"log"
	"time"

	cltj "repro"
	"repro/internal/dataset"
	"repro/internal/queries"
)

func main() {
	db := dataset.IMDBCast(dataset.IMDBConfig{
		Persons: 1200, Movies: 400, Appearances: 6000, PersonSkew: 1.9, Seed: 7,
	})
	q := queries.IMDBCycle(3) // the paper's 6-cycle over male/female cast
	fmt.Printf("query: %s\n\n", q)

	run := func(pol cltj.Policy) (int64, time.Duration, cltj.Counters) {
		var c cltj.Counters
		plan, err := cltj.NewPlan(q, db, cltj.Options{Counters: &c})
		if err != nil {
			log.Fatal(err)
		}
		c.Reset()
		start := time.Now()
		res := plan.Count(pol)
		return res.Count, time.Since(start), c
	}

	baseCount, baseDur, _ := run(cltj.Policy{Disabled: true})
	fmt.Printf("%-12s  %10s  %8s  %9s  %9s\n", "capacity", "time ms", "speedup", "hit rate", "entries")
	fmt.Printf("%-12s  %10.2f  %8s  %9s  %9s\n", "0 (LFTJ)",
		float64(baseDur.Microseconds())/1000, "1.0x", "-", "-")

	for _, capacity := range []int{64, 256, 1024, 4096, 16384, 0} {
		label := fmt.Sprintf("%d", capacity)
		if capacity == 0 {
			label = "unbounded"
		}
		count, dur, c := run(cltj.Policy{Capacity: capacity})
		if count != baseCount {
			log.Fatalf("capacity %s: count %d, want %d", label, count, baseCount)
		}
		fmt.Printf("%-12s  %10.2f  %7.1fx  %9.2f  %9d\n",
			label, float64(dur.Microseconds())/1000,
			float64(baseDur)/float64(dur), c.HitRate(),
			c.CacheInserts-c.CacheEvictions)
	}

	fmt.Println("\nSmall caches already capture most of the benefit because the")
	fmt.Println("person_id attribute is heavily skewed: a handful of prolific")
	fmt.Println("cast members account for most adhesion assignments.")
}
