// Tdexplorer: the decomposition side of the paper (§4). For a query, the
// example enumerates the smallest constrained separators of the Gaifman
// graph by increasing size, lists the candidate tree decompositions with
// their adhesion structure and heuristic cost, and then shows how much
// the choice matters by timing CLFTJ under each candidate on the same
// data (the Fig. 11 effect: same treewidth, very different caching).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	cltj "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/queries"
	"repro/internal/td"
)

func main() {
	q := queries.Lollipop(3, 2)
	vars := q.Vars()
	fmt.Printf("query ({3,2}-lollipop): %s\n\n", q)

	g := td.Gaifman(q)
	fmt.Println("smallest separators of the Gaifman graph (increasing size):")
	for _, s := range graph.KSmallestSeparators(g, nil, 3, 6) {
		names := make([]string, len(s))
		for i, x := range s {
			names[i] = vars[x]
		}
		fmt.Printf("  {%s}\n", strings.Join(names, ","))
	}

	cands := td.Enumerate(q, td.Options{})
	fmt.Printf("\n%d candidate decompositions; timing CLFTJ under each:\n\n", len(cands))

	data := dataset.PreferentialAttachment(400, 4, 99)
	db := data.DB(false)

	cfg := td.DefaultCostConfig(len(vars))
	fmt.Printf("%-4s  %5s  %6s  %7s  %10s  %10s  %s\n",
		"TD", "bags", "maxAdh", "cost", "count", "time ms", "bags (preorder)")
	for i, tree := range cands {
		order := make([]string, 0, len(vars))
		for _, xi := range tree.CompatibleOrder(len(vars)) {
			order = append(order, vars[xi])
		}
		plan, err := cltj.NewPlan(q, db, cltj.Options{TD: tree, Order: order})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res := plan.Count(core.Policy{})
		dur := time.Since(start)
		fmt.Printf("%-4d  %5d  %6d  %7.1f  %10d  %10.2f  %s\n",
			i+1, tree.N(), tree.MaxAdhesion(), td.Cost(tree, cfg),
			res.Count, float64(dur.Microseconds())/1000, bagsLine(tree, vars))
	}

	best, orderIdx := td.Select(q, td.Options{}, cfg)
	order := make([]string, len(orderIdx))
	for d, xi := range orderIdx {
		order[d] = vars[xi]
	}
	fmt.Printf("\ncost model selects: %s with order %v\n", bagsLine(best, vars), order)
}

func bagsLine(t *td.TD, vars []string) string {
	var parts []string
	for _, v := range t.Preorder() {
		names := make([]string, len(t.Bags[v]))
		for i, x := range t.Bags[v] {
			names[i] = vars[x]
		}
		parts = append(parts, "{"+strings.Join(names, ",")+"}")
	}
	return strings.Join(parts, " ")
}
