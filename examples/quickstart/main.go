// Quickstart: build a small graph database, run a 4-cycle count with
// CLFTJ, vanilla LFTJ and Yannakakis+TD, and enumerate a few result
// tuples — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	cltj "repro"
)

func main() {
	// A toy social graph: edges are directed "follows" relations.
	edges := [][]int64{
		{1, 2}, {2, 3}, {3, 4}, {4, 1}, // a 4-cycle
		{2, 5}, {5, 6}, {6, 3},
		{1, 3}, {4, 2}, {3, 1}, {2, 4}, // chords creating more cycles
	}
	db := cltj.NewDB(cltj.MustRelation("E", 2, edges))

	// The 4-cycle query: E(a,b), E(b,c), E(c,d), E(a,d).
	q := cltj.NewQuery(
		cltj.NewAtom("E", "a", "b"),
		cltj.NewAtom("E", "b", "c"),
		cltj.NewAtom("E", "c", "d"),
		cltj.NewAtom("E", "a", "d"),
	)

	// CLFTJ with an automatically selected tree decomposition.
	var counters cltj.Counters
	plan, err := cltj.NewPlan(q, db, cltj.Options{Counters: &counters})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("selected TD (order %v):\n%s", plan.Order(), plan.TD())

	res := plan.Count(cltj.Policy{})
	fmt.Printf("CLFTJ count: %d (trie accesses %d, cache hits %d)\n",
		res.Count, counters.TrieAccesses, counters.CacheHits)

	// The baselines agree.
	lftj, err := cltj.CountLFTJ(q, db, nil)
	if err != nil {
		log.Fatal(err)
	}
	ytd, err := cltj.CountYTD(q, db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LFTJ count: %d, YTD count: %d\n", lftj, ytd)

	// Enumerate the first few result tuples.
	fmt.Println("some results:")
	n := 0
	plan.Eval(cltj.Policy{}, func(mu []int64) bool {
		fmt.Printf("  %v (order %v)\n", append([]int64(nil), mu...), plan.Order())
		n++
		return n < 4
	})
}
