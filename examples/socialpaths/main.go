// Socialpaths: the paper's motivating scenario — counting long path
// patterns on a skewed social graph, where vanilla LFTJ recomputes the
// same suffixes over and over while CLFTJ caches them. The example
// sweeps path lengths, compares runtimes and memory accesses, and shows
// how the speedup grows with the query (Fig. 6's trend).
package main

import (
	"fmt"
	"log"
	"time"

	cltj "repro"
	"repro/internal/dataset"
	"repro/internal/queries"
)

func main() {
	// A preferential-attachment graph: a few celebrity hubs, many leaves —
	// the degree skew that makes caching pay off.
	g := dataset.PreferentialAttachment(500, 5, 42)
	db := g.DB(false)
	fmt.Printf("graph: %d nodes, %d directed edges\n\n", g.N, g.NumEdges())

	fmt.Printf("%-8s  %12s  %10s  %10s  %8s  %14s\n",
		"query", "count", "LFTJ ms", "CLFTJ ms", "speedup", "accesses saved")
	for k := 3; k <= 6; k++ {
		q := queries.Path(k)

		var cL cltj.Counters
		startL := time.Now()
		countL, err := cltj.CountLFTJ(q, db, &cL)
		if err != nil {
			log.Fatal(err)
		}
		durL := time.Since(startL)

		var cC cltj.Counters
		plan, err := cltj.NewPlan(q, db, cltj.Options{Counters: &cC})
		if err != nil {
			log.Fatal(err)
		}
		cC.Reset()
		startC := time.Now()
		resC := plan.Count(cltj.Policy{})
		durC := time.Since(startC)

		if countL != resC.Count {
			log.Fatalf("engines disagree on %d-path: %d vs %d", k, countL, resC.Count)
		}
		saved := "-"
		if tot := cC.Total(); tot > 0 {
			saved = fmt.Sprintf("%.1fx", float64(cL.Total())/float64(tot))
		}
		fmt.Printf("%d-path    %12d  %10.2f  %10.2f  %7.1fx  %14s\n",
			k, countL,
			float64(durL.Microseconds())/1000, float64(durC.Microseconds())/1000,
			float64(durL)/float64(durC), saved)
	}

	fmt.Println("\nCLFTJ counts long paths without enumerating them: each cached")
	fmt.Println("bag stores the number of path suffixes per adhesion value, so")
	fmt.Println("hub nodes are expanded once instead of once per incoming prefix.")
}
